package analyze

import (
	"repro/internal/kernel"
	"repro/internal/source"
)

// The kernel-level rules (ECL010–ECL012) inspect the lowered Esterel
// kernel IR, after module inlining and reactive/data splitting: what
// they see is the whole design, not one module's text. Positions are
// best-effort — kernel statements carry no positions of their own, so
// rules anchor on the AST expressions embedded in data actions and
// fall back to the module declaration.

// exprPos finds the first source position embedded in a kernel subtree.
func exprPos(s kernel.Stmt) source.Pos {
	var pos source.Pos
	kernel.Walk(s, func(n kernel.Stmt) {
		if pos.IsValid() {
			return
		}
		switch n := n.(type) {
		case *kernel.Emit:
			if n.Value != nil {
				pos = n.Value.E.Pos()
			}
		case *kernel.Assign:
			pos = n.LHS.E.Pos()
		case *kernel.Eval:
			pos = n.X.E.Pos()
		case *kernel.IfData:
			pos = n.Cond.E.Pos()
		case *kernel.DataCall:
			if len(n.F.Body) > 0 {
				pos = n.F.Body[0].Pos()
			}
		}
	})
	return pos
}

// emitConflicts is ECL010: a valued signal emitted by two branches of
// one par. If both branches emit in the same instant the writes
// collide and one value is lost; pure signals are exempt (presence is
// idempotent).
func (p *pass) emitConflicts() {
	mod := p.design.Lowered.Module
	kernel.Walk(mod.Body, func(s kernel.Stmt) {
		par, ok := s.(*kernel.Par)
		if !ok {
			return
		}
		// firstEmit remembers the earliest emit per signal across the
		// branches walked so far; a second branch emitting the same
		// valued signal is the conflict.
		firstEmit := make(map[*kernel.Signal]int)
		reported := make(map[*kernel.Signal]bool)
		for i, br := range par.Branches {
			inBranch := make(map[*kernel.Signal]*kernel.Emit)
			kernel.Walk(br, func(n kernel.Stmt) {
				if e, ok := n.(*kernel.Emit); ok && !e.Sig.Pure {
					if inBranch[e.Sig] == nil {
						inBranch[e.Sig] = e
					}
				}
			})
			for sig, e := range inBranch {
				if _, dup := firstEmit[sig]; !dup {
					firstEmit[sig] = i
					continue
				}
				if reported[sig] {
					continue
				}
				reported[sig] = true
				pos := source.Pos{}
				if e.Value != nil {
					pos = e.Value.E.Pos()
				}
				if !pos.IsValid() {
					pos = p.modulePos()
				}
				p.report(pos, "valued signal %q is emitted by two parallel branches (write-write conflict if both emit in one instant)", sig.Name)
			}
		}
	})
}

// terminates reports whether a kernel statement can terminate normally
// (pass control to its sequential successor). It is deliberately
// optimistic about preemption — an abort body is assumed escapable —
// so a "never terminates" verdict is reliable.
type termAnalysis struct {
	memo map[kernel.Stmt]bool
}

func (ta *termAnalysis) terminates(s kernel.Stmt) bool {
	if s == nil {
		return true
	}
	if v, ok := ta.memo[s]; ok {
		return v
	}
	// Pre-seed true: a (semantically impossible) cycle defaults to the
	// optimistic answer, keeping the verdict reliable.
	ta.memo[s] = true
	v := ta.computeTerm(s)
	ta.memo[s] = v
	return v
}

func (ta *termAnalysis) computeTerm(s kernel.Stmt) bool {
	switch s := s.(type) {
	case *kernel.Halt:
		return false
	case *kernel.Exit:
		return false // control leaves the sequence via the trap
	case *kernel.Loop:
		// A loop only terminates through an Exit crossing it, which is
		// an Exit's non-termination, not the loop's.
		return false
	case *kernel.Seq:
		for _, c := range s.List {
			if !ta.terminates(c) {
				return false
			}
		}
		return true
	case *kernel.Par:
		for _, b := range s.Branches {
			if !ta.terminates(b) {
				return false
			}
		}
		return true
	case *kernel.Present:
		return ta.terminates(s.Then) || ta.terminates(s.Else)
	case *kernel.IfData:
		return ta.terminates(s.Then) || ta.terminates(s.Else)
	case *kernel.Trap:
		if ta.hasExitTo(s.Body, s) {
			return true
		}
		return ta.terminates(s.Body)
	case *kernel.Abort:
		return true // preemption can always end the body
	case *kernel.Suspend:
		return ta.terminates(s.Body)
	case *kernel.Local:
		return ta.terminates(s.Body)
	}
	// Nothing, Pause, Await, Emit, Assign, Eval, DataCall.
	return true
}

func (ta *termAnalysis) hasExitTo(s kernel.Stmt, t *kernel.Trap) bool {
	found := false
	kernel.Walk(s, func(n kernel.Stmt) {
		if e, ok := n.(*kernel.Exit); ok && e.Target == t {
			found = true
		}
	})
	return found
}

// deadCode is ECL011: statements in a sequence after one that never
// terminates (halt, a loop with no exit, a bare break).
func (p *pass) deadCode() {
	mod := p.design.Lowered.Module
	ta := &termAnalysis{memo: make(map[kernel.Stmt]bool)}
	kernel.Walk(mod.Body, func(s kernel.Stmt) {
		seq, ok := s.(*kernel.Seq)
		if !ok {
			return
		}
		for i, c := range seq.List {
			if ta.terminates(c) {
				continue
			}
			// Everything after c is unreachable; report the first
			// non-trivial dead statement and stop (nested walks will
			// not re-report inside c itself).
			for _, d := range seq.List[i+1:] {
				if _, trivial := d.(*kernel.Nothing); trivial {
					continue
				}
				pos := exprPos(d)
				if !pos.IsValid() {
					pos = exprPos(c)
				}
				if !pos.IsValid() {
					pos = p.modulePos()
				}
				p.report(pos, "unreachable code after %s", describeNonTerm(c))
				return
			}
			return
		}
	})
}

func describeNonTerm(s kernel.Stmt) string {
	switch s.(type) {
	case *kernel.Halt:
		return "halt()"
	case *kernel.Exit:
		return "a break"
	case *kernel.Loop, *kernel.Trap:
		return "a loop that never exits"
	}
	return "a statement that never terminates"
}

// constBranches is ECL012: a data branch whose condition folds to a
// constant, so one arm can never run. Loop-generated branches (the
// while-condition test lowering emits: no then-arm, an exit else-arm)
// are exempt — a constant there is the explicit `do {...} while (0)`
// idiom, not a mistake.
func (p *pass) constBranches() {
	mod := p.design.Lowered.Module
	kernel.Walk(mod.Body, func(s kernel.Stmt) {
		ifd, ok := s.(*kernel.IfData)
		if !ok {
			return
		}
		if ifd.Then == nil {
			if _, exitElse := ifd.Else.(*kernel.Exit); exitElse || ifd.Else == nil {
				return
			}
		}
		v, ok := ifd.Cond.B.Info.ConstEval(ifd.Cond.E)
		if !ok {
			return
		}
		arm := "false: the then-branch never runs"
		if v != 0 {
			arm = "true: the else-branch never runs"
			if ifd.Else == nil {
				arm = "true: the test is redundant"
			}
		} else if ifd.Then == nil {
			arm = "false: the test is redundant"
		}
		pos := ifd.Cond.E.Pos()
		if !pos.IsValid() {
			pos = p.modulePos()
		}
		p.report(pos, "condition %q is always %s", ifd.Cond.String(), arm)
	})
}
