package analyze

import (
	"fmt"

	"repro/internal/analyze/absint"
	"repro/internal/ast"
	"repro/internal/efsm"
	"repro/internal/kernel"
	"repro/internal/sem"
	"repro/internal/source"
)

// The EFSM-level rules (ECL020–ECL023) inspect the compiled machine:
// every control state's decision tree, flattened into transitions.
// Reachability here is stronger than the compiler's forward
// exploration — the compiler explores both arms of every unknown data
// branch, so a state can exist yet be enterable only through guards
// that contradict themselves. These rules re-check each transition
// guard for satisfiability and walk the machine along satisfiable
// transitions only.

// efsmFacts is everything the EFSM rules share for one machine.
type efsmFacts struct {
	m *efsm.Machine
	// trans caches Transitions per state (flattening is O(paths)).
	trans map[*efsm.State][]*efsm.Transition
	// synReach holds states enterable from Initial via transitions the
	// per-transition syntactic check (unsatCond) cannot refute.
	synReach map[*efsm.State]bool
	// reachable holds states some value-consistent execution enters —
	// the abstract interpreter's reachability, always a subset of
	// synReach. Signal-usage facts and the value rules use this.
	reachable map[*efsm.State]bool
	// abs is the converged abstract interpretation of the machine.
	abs *absint.Result
	// tested, referenced, emitted summarize signal usage over the
	// transitions of reachable states: presence-tested by an input
	// branch, value-read by a condition/action/data function, emitted
	// by an action.
	tested     map[*kernel.Signal]bool
	referenced map[*kernel.Signal]bool
	emitted    map[*kernel.Signal]bool
}

func (p *pass) efsmFacts() *efsmFacts {
	if p.efsmDone {
		return p.efsm
	}
	p.efsmDone = true
	m := p.design.Machine
	if m == nil {
		return nil
	}
	f := &efsmFacts{
		m:          m,
		trans:      make(map[*efsm.State][]*efsm.Transition),
		synReach:   make(map[*efsm.State]bool),
		tested:     make(map[*kernel.Signal]bool),
		referenced: make(map[*kernel.Signal]bool),
		emitted:    make(map[*kernel.Signal]bool),
	}
	for _, s := range m.States {
		f.trans[s] = m.Transitions(s)
	}
	// BFS from the initial state over syntactically satisfiable
	// transitions (the pre-value-analysis notion of reachability).
	var queue []*efsm.State
	if m.Initial != nil {
		f.synReach[m.Initial] = true
		queue = append(queue, m.Initial)
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, t := range f.trans[s] {
			if t.To == nil || f.synReach[t.To] || unsatCond(t) >= 0 {
				continue
			}
			f.synReach[t.To] = true
			queue = append(queue, t.To)
		}
	}
	// Value-aware reachability: the abstract interpreter walks the
	// decision trees with interval stores; syntactically refuted paths
	// are pruned so their refutations stay attributed to ECL021.
	f.abs = absint.Analyze(m, func(s *efsm.State, leaf int) bool {
		ts := f.trans[s]
		return leaf < len(ts) && unsatCond(ts[leaf]) >= 0
	})
	f.reachable = f.abs.Reachable
	// Signal usage over reachable states.
	for _, s := range m.States {
		if !f.reachable[s] {
			continue
		}
		for _, t := range f.trans[s] {
			for sig := range t.Inputs {
				f.tested[sig] = true
			}
			for _, dc := range t.Data {
				noteSignalRefs(dc.Expr, f.referenced)
			}
			for _, a := range t.Actions {
				switch a.Kind {
				case efsm.ActEmit:
					f.emitted[a.Sig] = true
					if a.Value != nil {
						noteSignalRefs(*a.Value, f.referenced)
					}
				case efsm.ActAssign:
					noteSignalRefs(a.LHS, f.referenced)
					noteSignalRefs(a.RHS, f.referenced)
				case efsm.ActEval:
					noteSignalRefs(a.X, f.referenced)
				case efsm.ActCall:
					for _, st := range a.F.Body {
						noteStmtSignalRefs(a.F.B, st, f.referenced)
					}
				}
			}
		}
	}
	p.efsm = f
	return f
}

// noteSignalRefs records every signal whose value the bound expression
// reads.
func noteSignalRefs(e kernel.Expr, dst map[*kernel.Signal]bool) {
	if e.E == nil || e.B == nil {
		return
	}
	walkExpr(e.E, func(n ast.Node) {
		if id, ok := n.(*ast.Ident); ok {
			if si, ok := e.B.Info.UseOf(id).(*sem.SignalInfo); ok {
				if sig := e.B.Sigs[si]; sig != nil {
					dst[sig] = true
				}
			}
		}
	})
}

// noteStmtSignalRefs is noteSignalRefs over an extracted data
// function's statements.
func noteStmtSignalRefs(b *kernel.Binding, s ast.Stmt, dst map[*kernel.Signal]bool) {
	walkStmt(s, func(n ast.Node) {
		if id, ok := n.(*ast.Ident); ok {
			if si, ok := b.Info.UseOf(id).(*sem.SignalInfo); ok {
				if sig := b.Sigs[si]; sig != nil {
					dst[sig] = true
				}
			}
		}
	})
}

// unsatCond decides whether a transition's guard is unsatisfiable and
// returns the index of the offending data condition (-1 if the guard
// is satisfiable as far as this analysis can tell). Two checks:
//
//   - a condition that folds to a constant contradicting its required
//     outcome;
//   - the same condition (same expression text, same module instance)
//     required both true and false on one path — sound only when no
//     action on the path can change a value the conditions read, so
//     any transition with assignments, evals, calls, or valued emits
//     is conservatively satisfiable.
func unsatCond(t *efsm.Transition) int {
	valueSafe := true
	for _, a := range t.Actions {
		if a.Kind != efsm.ActEmit || a.Value != nil {
			valueSafe = false
			break
		}
	}
	seen := make(map[string]bool)
	for i, dc := range t.Data {
		if dc.Expr.B != nil && dc.Expr.E != nil {
			if v, ok := dc.Expr.B.Info.ConstEval(dc.Expr.E); ok {
				if (v != 0) != dc.Want {
					return i
				}
				continue
			}
		}
		if !valueSafe {
			continue
		}
		key := fmt.Sprintf("%p|%s", dc.Expr.B, dc.Expr.String())
		if want, dup := seen[key]; dup {
			if want != dc.Want {
				return i
			}
		} else {
			seen[key] = dc.Want
		}
	}
	return -1
}

// unreachableStates is ECL020: a state the machine cannot enter — every
// path to it from the initial state crosses an unsatisfiable guard.
// States only the value analysis can refute are ECL034's, not ours:
// the more precise rule wins and the pair never double-reports.
func (p *pass) unreachableStates() {
	f := p.efsmFacts()
	if f == nil {
		return
	}
	for _, s := range f.m.States {
		if f.synReach[s] {
			continue
		}
		p.report(p.modulePos(), "state s%d is unreachable: every path to it has an unsatisfiable guard", s.ID)
	}
}

// deadTransitions is ECL021: a transition of a reachable state whose
// guard can never hold.
func (p *pass) deadTransitions() {
	f := p.efsmFacts()
	if f == nil {
		return
	}
	for _, s := range f.m.States {
		if !f.reachable[s] {
			continue
		}
		for _, t := range f.trans[s] {
			i := unsatCond(t)
			if i < 0 {
				continue
			}
			pos := source.Pos{}
			if t.Data[i].Expr.E != nil {
				pos = t.Data[i].Expr.E.Pos()
			}
			if !pos.IsValid() {
				pos = p.modulePos()
			}
			p.report(pos, "transition from state s%d can never fire: guard %q is unsatisfiable", s.ID, t.GuardString())
		}
	}
}

// idleInputs is ECL022: an input signal no reachable transition ever
// tests for presence or reads the value of — the environment can wiggle
// it forever without the machine noticing.
func (p *pass) idleInputs() {
	f := p.efsmFacts()
	if f == nil {
		return
	}
	for _, sig := range f.m.Inputs {
		if f.tested[sig] || f.referenced[sig] {
			continue
		}
		p.report(p.interfacePos(sig.Name), "input signal %q is never tested or read by any reachable transition", sig.Name)
	}
}

// idleOutputs is ECL023: an output signal no reachable transition ever
// emits — the machine can never drive it.
func (p *pass) idleOutputs() {
	f := p.efsmFacts()
	if f == nil {
		return
	}
	for _, sig := range f.m.Outputs {
		if f.emitted[sig] {
			continue
		}
		p.report(p.interfacePos(sig.Name), "output signal %q is never emitted by any reachable transition", sig.Name)
	}
}

// interfacePos anchors an interface-signal finding on the parameter's
// declaration, falling back to the module.
func (p *pass) interfacePos(name string) source.Pos {
	if mi := p.design.Lowered.Info.Modules[p.module]; mi != nil && mi.Decl != nil {
		for _, sp := range mi.Decl.Params {
			if sp.Name == name {
				return sp.DirPos
			}
		}
	}
	return p.modulePos()
}
