// Package cval implements the runtime value model for ECL's C data: every
// value is a typed view over raw bytes laid out exactly as on the
// 32-bit big-endian MIPS R3000 target. Struct fields and array elements
// are sub-views sharing the parent's storage, so C union aliasing works
// byte-for-byte — Figure 2 of the paper reads the CRC bytes through
// packet_t's "cooked" view that Figure 1 wrote through the "raw" view.
package cval

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ctypes"
)

// Value is a typed view over storage. The zero Value is invalid; build
// values with New, FromInt, FromFloat, or FromBool.
type Value struct {
	Type ctypes.Type
	B    []byte // len(B) == Type.Size(); scalars big-endian
}

// New allocates a zeroed value of type t.
func New(t ctypes.Type) Value {
	return Value{Type: t, B: make([]byte, t.Size())}
}

// IsValid reports whether the value has a type and storage.
func (v Value) IsValid() bool { return v.Type != nil && len(v.B) == v.Type.Size() }

// Clone returns a deep copy with fresh storage.
func (v Value) Clone() Value {
	b := make([]byte, len(v.B))
	copy(b, v.B)
	return Value{Type: v.Type, B: b}
}

// FromInt builds a value of integer-like type t holding x (truncated to
// t's width).
func FromInt(t ctypes.Type, x int64) Value {
	v := New(t)
	v.SetInt(x)
	return v
}

// FromFloat builds a float/double value.
func FromFloat(t ctypes.Type, x float64) Value {
	v := New(t)
	v.SetFloat(x)
	return v
}

// FromBool builds a bool value.
func FromBool(b bool) Value {
	v := New(ctypes.Bool)
	if b {
		v.B[0] = 1
	}
	return v
}

// ---------------------------------------------------------------------------
// Scalar access

// Int reads an integer-like scalar (int, char, bool, enum), applying
// sign extension for signed types.
func (v Value) Int() int64 {
	var u uint64
	for _, b := range v.B {
		u = u<<8 | uint64(b)
	}
	n := len(v.B)
	if n == 0 {
		return 0
	}
	if signedType(v.Type) {
		shift := uint(64 - 8*n)
		return int64(u<<shift) >> shift
	}
	return int64(u)
}

// Uint reads the scalar as unsigned.
func (v Value) Uint() uint64 {
	var u uint64
	for _, b := range v.B {
		u = u<<8 | uint64(b)
	}
	return u
}

// SetInt stores x truncated to the value's width, big-endian.
func (v Value) SetInt(x int64) {
	u := uint64(x)
	for i := len(v.B) - 1; i >= 0; i-- {
		v.B[i] = byte(u)
		u >>= 8
	}
}

// Float reads a float or double scalar.
func (v Value) Float() float64 {
	switch v.Type {
	case ctypes.Float:
		return float64(math.Float32frombits(uint32(v.Uint())))
	case ctypes.Double:
		return math.Float64frombits(v.Uint())
	}
	return float64(v.Int())
}

// SetFloat stores a float or double scalar.
func (v Value) SetFloat(x float64) {
	switch v.Type {
	case ctypes.Float:
		v.setUint(uint64(math.Float32bits(float32(x))))
	case ctypes.Double:
		v.setUint(math.Float64bits(x))
	default:
		v.SetInt(int64(x))
	}
}

func (v Value) setUint(u uint64) {
	for i := len(v.B) - 1; i >= 0; i-- {
		v.B[i] = byte(u)
		u >>= 8
	}
}

// Bool reports whether the scalar is non-zero (any byte set, which for
// scalars equals the C truth test).
func (v Value) Bool() bool {
	for _, b := range v.B {
		if b != 0 {
			return true
		}
	}
	return false
}

func signedType(t ctypes.Type) bool {
	switch t := t.(type) {
	case *ctypes.IntType:
		return !t.Unsigned
	case *ctypes.EnumType:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Aggregate access (views share storage)

// Field returns a view of the named struct/union member. Mutating the
// view mutates the parent.
func (v Value) Field(name string) (Value, error) {
	st, ok := v.Type.(*ctypes.StructType)
	if !ok {
		return Value{}, fmt.Errorf("field access on non-struct %s", v.Type)
	}
	f := st.Field(name)
	if f == nil {
		return Value{}, fmt.Errorf("no field %q in %s", name, st)
	}
	return Value{Type: f.Type, B: v.B[f.Offset : f.Offset+f.Type.Size()]}, nil
}

// Index returns a view of the i-th array element.
func (v Value) Index(i int) (Value, error) {
	at, ok := v.Type.(*ctypes.ArrayType)
	if !ok {
		return Value{}, fmt.Errorf("index on non-array %s", v.Type)
	}
	if i < 0 || i >= at.Len {
		return Value{}, fmt.Errorf("index %d out of range [0,%d)", i, at.Len)
	}
	sz := at.Elem.Size()
	return Value{Type: at.Elem, B: v.B[i*sz : (i+1)*sz]}, nil
}

// ---------------------------------------------------------------------------
// Assignment and conversion

// Assign stores src into v's storage, converting scalars when the
// types differ; aggregate types must be identical (bitwise copy).
func (v Value) Assign(src Value) error {
	if ctypes.Identical(v.Type, src.Type) {
		copy(v.B, src.B)
		return nil
	}
	if ctypes.IsArithmetic(v.Type) && ctypes.IsArithmetic(src.Type) {
		converted, err := Convert(src, v.Type)
		if err != nil {
			return err
		}
		copy(v.B, converted.B)
		return nil
	}
	return fmt.Errorf("cannot assign %s to %s", src.Type, v.Type)
}

// Convert returns src as type to, applying C conversion rules. An
// integer-array source reinterprets its leading bytes as the target
// integer (the paper's Figure 2 cast idiom, big-endian).
func Convert(src Value, to ctypes.Type) (Value, error) {
	if ctypes.Identical(src.Type, to) {
		return src.Clone(), nil
	}
	switch {
	case to.Kind() == ctypes.KindFloat && ctypes.IsArithmetic(src.Type):
		out := New(to)
		if src.Type.Kind() == ctypes.KindFloat {
			out.SetFloat(src.Float())
		} else {
			out.SetFloat(float64(src.Int()))
		}
		return out, nil
	case ctypes.IsInteger(to) && src.Type.Kind() == ctypes.KindFloat:
		out := New(to)
		out.SetInt(int64(src.Float()))
		return out, nil
	case ctypes.IsInteger(to) && ctypes.IsInteger(src.Type):
		out := New(to)
		if to == ctypes.Bool {
			if src.Bool() {
				out.B[0] = 1
			}
			return out, nil
		}
		out.SetInt(src.Int())
		return out, nil
	}
	if at, ok := src.Type.(*ctypes.ArrayType); ok && ctypes.IsInteger(to) && ctypes.IsInteger(at.Elem) {
		out := New(to)
		n := len(out.B)
		if len(src.B) < n {
			n = len(src.B)
		}
		// Leading bytes, right-aligned in the target (big-endian read).
		copy(out.B[len(out.B)-n:], src.B[:n])
		return out, nil
	}
	return Value{}, fmt.Errorf("cannot convert %s to %s", src.Type, to)
}

// Equal reports bitwise equality of two values of identical type.
func (v Value) Equal(o Value) bool {
	if !ctypes.Identical(v.Type, o.Type) {
		return false
	}
	if len(v.B) != len(o.B) {
		return false
	}
	for i := range v.B {
		if v.B[i] != o.B[i] {
			return false
		}
	}
	return true
}

// String formats the value for debugging: scalars by value, aggregates
// as hex bytes.
func (v Value) String() string {
	if !v.IsValid() {
		return "<invalid>"
	}
	switch v.Type.Kind() {
	case ctypes.KindBool:
		if v.Bool() {
			return "true"
		}
		return "false"
	case ctypes.KindInt, ctypes.KindEnum:
		if ctypes.IsUnsigned(v.Type) {
			return fmt.Sprintf("%d", v.Uint())
		}
		return fmt.Sprintf("%d", v.Int())
	case ctypes.KindFloat:
		return fmt.Sprintf("%g", v.Float())
	}
	var b strings.Builder
	b.WriteString("0x")
	for _, x := range v.B {
		fmt.Fprintf(&b, "%02x", x)
	}
	return b.String()
}
