package cval

import (
	"testing"
	"testing/quick"

	"repro/internal/ctypes"
)

func TestIntRoundTrip(t *testing.T) {
	cases := []struct {
		ty   ctypes.Type
		in   int64
		want int64
	}{
		{ctypes.Int, 42, 42},
		{ctypes.Int, -1, -1},
		{ctypes.Int, 1 << 31, -(1 << 31)}, // wraps
		{ctypes.UInt, -1, 0xFFFFFFFF},
		{ctypes.Char, 200, -56}, // char is signed, wraps
		{ctypes.UChar, 200, 200},
		{ctypes.UChar, 256, 0},
		{ctypes.Short, 0x8000, -0x8000},
		{ctypes.UShort, 0xFFFF, 0xFFFF},
	}
	for _, c := range cases {
		v := FromInt(c.ty, c.in)
		if got := v.Int(); got != c.want {
			t.Errorf("FromInt(%s, %d).Int() = %d, want %d", c.ty, c.in, got, c.want)
		}
	}
}

func TestBigEndianLayout(t *testing.T) {
	v := FromInt(ctypes.Int, 0x01020304)
	want := []byte{1, 2, 3, 4}
	for i := range want {
		if v.B[i] != want[i] {
			t.Fatalf("bytes = %v, want %v (big-endian)", v.B, want)
		}
	}
}

func TestFloatRoundTrip(t *testing.T) {
	d := FromFloat(ctypes.Double, 3.5)
	if d.Float() != 3.5 {
		t.Errorf("double = %g", d.Float())
	}
	f := FromFloat(ctypes.Float, 1.25)
	if f.Float() != 1.25 {
		t.Errorf("float = %g", f.Float())
	}
	if len(f.B) != 4 || len(d.B) != 8 {
		t.Errorf("sizes: float %d, double %d", len(f.B), len(d.B))
	}
}

func TestBool(t *testing.T) {
	v := FromBool(true)
	if !v.Bool() || v.Int() != 1 {
		t.Error("true bool wrong")
	}
	v = FromBool(false)
	if v.Bool() {
		t.Error("false bool wrong")
	}
}

func packetTypes() (*ctypes.StructType, *ctypes.StructType, *ctypes.StructType) {
	byteT := ctypes.UChar
	raw := ctypes.NewStruct(false, "", []ctypes.StructField{
		{Name: "packet", Type: &ctypes.ArrayType{Elem: byteT, Len: 64}},
	})
	cooked := ctypes.NewStruct(false, "", []ctypes.StructField{
		{Name: "header", Type: &ctypes.ArrayType{Elem: byteT, Len: 6}},
		{Name: "data", Type: &ctypes.ArrayType{Elem: byteT, Len: 56}},
		{Name: "crc", Type: &ctypes.ArrayType{Elem: byteT, Len: 2}},
	})
	pkt := ctypes.NewStruct(true, "", []ctypes.StructField{
		{Name: "raw", Type: raw},
		{Name: "cooked", Type: cooked},
	})
	return pkt, raw, cooked
}

// TestUnionAliasing is the paper-critical property: bytes written via
// the raw view must be readable via the cooked view.
func TestUnionAliasing(t *testing.T) {
	pkt, _, _ := packetTypes()
	v := New(pkt)
	raw, err := v.Field("raw")
	if err != nil {
		t.Fatal(err)
	}
	arr, err := raw.Field("packet")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		el, err := arr.Index(i)
		if err != nil {
			t.Fatal(err)
		}
		el.SetInt(int64(i + 1))
	}
	cooked, _ := v.Field("cooked")
	hdr, _ := cooked.Field("header")
	h0, _ := hdr.Index(0)
	if h0.Int() != 1 {
		t.Errorf("header[0] = %d, want 1", h0.Int())
	}
	crc, _ := cooked.Field("crc")
	c0, _ := crc.Index(0)
	c1, _ := crc.Index(1)
	if c0.Int() != 63 || c1.Int() != 64 {
		t.Errorf("crc = [%d %d], want [63 64]", c0.Int(), c1.Int())
	}
}

func TestArrayToIntReinterpret(t *testing.T) {
	// Figure 2 idiom: (int) crc_bytes reads big-endian leading bytes.
	arr := New(&ctypes.ArrayType{Elem: ctypes.UChar, Len: 2})
	e0, _ := arr.Index(0)
	e1, _ := arr.Index(1)
	e0.SetInt(0x12)
	e1.SetInt(0x34)
	out, err := Convert(arr, ctypes.Int)
	if err != nil {
		t.Fatal(err)
	}
	if out.Int() != 0x1234 {
		t.Errorf("got %#x, want 0x1234", out.Int())
	}
}

func TestAssignConversion(t *testing.T) {
	dst := New(ctypes.UChar)
	if err := dst.Assign(FromInt(ctypes.Int, 0x1FF)); err != nil {
		t.Fatal(err)
	}
	if dst.Int() != 0xFF {
		t.Errorf("got %d, want 255 (truncated)", dst.Int())
	}

	b := New(ctypes.Bool)
	if err := b.Assign(FromInt(ctypes.Int, 7)); err != nil {
		t.Fatal(err)
	}
	if got, _ := Convert(FromInt(ctypes.Int, 7), ctypes.Bool); got.Int() != 1 {
		t.Errorf("bool conversion of 7 = %d, want 1", got.Int())
	}
}

func TestAssignStructCopy(t *testing.T) {
	pkt, _, _ := packetTypes()
	a := New(pkt)
	bv := New(pkt)
	raw, _ := a.Field("raw")
	arr, _ := raw.Field("packet")
	el, _ := arr.Index(5)
	el.SetInt(99)
	if err := bv.Assign(a); err != nil {
		t.Fatal(err)
	}
	braw, _ := bv.Field("raw")
	barr, _ := braw.Field("packet")
	bel, _ := barr.Index(5)
	if bel.Int() != 99 {
		t.Error("struct copy lost data")
	}
	// Deep copy: mutating the source must not affect the copy.
	el.SetInt(1)
	if bel.Int() != 99 {
		t.Error("struct copy aliases source")
	}
}

func TestAssignMismatch(t *testing.T) {
	pkt, raw, _ := packetTypes()
	a := New(pkt)
	b := New(raw)
	if err := a.Assign(b); err == nil {
		t.Error("expected error assigning struct to union of different type")
	}
}

func TestIndexBounds(t *testing.T) {
	arr := New(&ctypes.ArrayType{Elem: ctypes.Int, Len: 3})
	if _, err := arr.Index(3); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := arr.Index(-1); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestFieldErrors(t *testing.T) {
	v := New(ctypes.Int)
	if _, err := v.Field("x"); err == nil {
		t.Error("field on scalar must fail")
	}
	pkt, _, _ := packetTypes()
	p := New(pkt)
	if _, err := p.Field("nosuch"); err == nil {
		t.Error("unknown field must fail")
	}
}

func TestEqual(t *testing.T) {
	a := FromInt(ctypes.Int, 5)
	b := FromInt(ctypes.Int, 5)
	c := FromInt(ctypes.Int, 6)
	d := FromInt(ctypes.UInt, 5)
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("Equal misbehaves")
	}
}

func TestString(t *testing.T) {
	if s := FromInt(ctypes.Int, -3).String(); s != "-3" {
		t.Errorf("got %q", s)
	}
	if s := FromBool(true).String(); s != "true" {
		t.Errorf("got %q", s)
	}
	arr := New(&ctypes.ArrayType{Elem: ctypes.UChar, Len: 2})
	if s := arr.String(); s != "0x0000" {
		t.Errorf("got %q", s)
	}
}

// Property: for any int32, storing and reading through Int preserves
// the value; unsigned read is the two's-complement reinterpretation.
func TestPropertyIntStore(t *testing.T) {
	f := func(x int32) bool {
		v := FromInt(ctypes.Int, int64(x))
		if v.Int() != int64(x) {
			return false
		}
		u := FromInt(ctypes.UInt, int64(x))
		return u.Uint() == uint64(uint32(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clone is deep — mutating the clone never affects the source.
func TestPropertyCloneIsDeep(t *testing.T) {
	f := func(x int32, mut byte) bool {
		v := FromInt(ctypes.Int, int64(x))
		c := v.Clone()
		c.B[0] = mut
		return v.Int() == int64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: array->int reinterpretation matches a manual big-endian read.
func TestPropertyArrayReinterpret(t *testing.T) {
	f := func(b0, b1, b2, b3 byte) bool {
		arr := New(&ctypes.ArrayType{Elem: ctypes.UChar, Len: 4})
		for i, x := range []byte{b0, b1, b2, b3} {
			el, _ := arr.Index(i)
			el.SetInt(int64(x))
		}
		out, err := Convert(arr, ctypes.UInt)
		if err != nil {
			return false
		}
		want := uint64(b0)<<24 | uint64(b1)<<16 | uint64(b2)<<8 | uint64(b3)
		return out.Uint() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
