package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func entry(module string, kv ...string) *Entry {
	e := &Entry{Module: module, Artifacts: map[string]string{}}
	for i := 0; i < len(kv); i += 2 {
		e.Artifacts[kv[i]] = kv[i+1]
	}
	return e
}

func TestPutGetRoundTrip(t *testing.T) {
	s := testStore(t)
	if err := s.Put("k1", entry("mod", "c", "int main(){}", "esterel", "module mod:")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1", []string{"c", "esterel"})
	if !ok {
		t.Fatal("expected hit")
	}
	if got.Module != "mod" || got.Artifacts["c"] != "int main(){}" || got.Artifacts["esterel"] != "module mod:" {
		t.Fatalf("got %+v", got)
	}
	if _, ok := s.Get("k1", []string{"c", "verilog"}); ok {
		t.Fatal("missing artifact must miss")
	}
	if _, ok := s.Get("other", []string{"c"}); ok {
		t.Fatal("unknown key must miss")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutMergesArtifacts(t *testing.T) {
	s := testStore(t)
	if err := s.Put("k", entry("m", "c", "CC")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", entry("m", "go", "GG")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k", []string{"c", "go"})
	if !ok || got.Artifacts["c"] != "CC" || got.Artifacts["go"] != "GG" {
		t.Fatalf("merge lost artifacts: %+v ok=%v", got, ok)
	}
}

func TestReopenSurvivesProcessBoundary(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k", entry("m", "c", "text")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir) // a second Store simulates a fresh process
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("k", []string{"c"}); !ok || got.Artifacts["c"] != "text" {
		t.Fatalf("reopened store missed: %+v ok=%v", got, ok)
	}
}

// ---------------------------------------------------------------------------
// Corruption: truncated or garbage manifests and blobs must read as
// misses and be repaired by the next Put — never a panic or an error.

func TestCorruptManifestIsMissAndRepaired(t *testing.T) {
	for _, junk := range []string{"", "{", "garbage", `{"version":999,"key":"k","module":"m","artifacts":{"c":"x"}}`, `{"version":1,"key":"WRONG","module":"m","artifacts":{"c":"x"}}`} {
		s := testStore(t)
		if err := s.Put("k", entry("m", "c", "text")); err != nil {
			t.Fatal(err)
		}
		path := s.manifestPath("k")
		if err := os.WriteFile(path, []byte(junk), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get("k", []string{"c"}); ok {
			t.Fatalf("junk manifest %q must miss", junk)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("junk manifest %q not deleted", junk)
		}
		if err := s.Put("k", entry("m", "c", "text")); err != nil {
			t.Fatalf("repair Put: %v", err)
		}
		if got, ok := s.Get("k", []string{"c"}); !ok || got.Artifacts["c"] != "text" {
			t.Fatalf("after repair: %+v ok=%v", got, ok)
		}
	}
}

func TestCorruptBlobIsMissAndRepaired(t *testing.T) {
	for _, mutate := range []func(string) error{
		func(p string) error { return os.WriteFile(p, []byte("garbage"), 0o644) }, // wrong content
		func(p string) error { return os.Truncate(p, 3) },                         // truncated
		os.Remove, // missing
	} {
		s := testStore(t)
		if err := s.Put("k", entry("m", "c", "the artifact text")); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256([]byte("the artifact text"))
		blob := s.blobPath(hex.EncodeToString(sum[:]))
		if err := mutate(blob); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get("k", []string{"c"}); ok {
			t.Fatal("corrupt blob must miss")
		}
		// The manifest referencing the bad blob must be gone too, so a
		// fresh Put fully repairs the key.
		if _, err := os.Stat(s.manifestPath("k")); !os.IsNotExist(err) {
			t.Fatal("manifest referencing corrupt blob not invalidated")
		}
		if err := s.Put("k", entry("m", "c", "the artifact text")); err != nil {
			t.Fatalf("repair Put: %v", err)
		}
		if got, ok := s.Get("k", []string{"c"}); !ok || got.Artifacts["c"] != "the artifact text" {
			t.Fatalf("after repair: %+v ok=%v", got, ok)
		}
	}
}

// ---------------------------------------------------------------------------
// GC

func TestGCMaxAge(t *testing.T) {
	s := testStore(t)
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), entry("m", "c", fmt.Sprintf("text%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Age two entries past the cutoff.
	old := time.Now().Add(-48 * time.Hour)
	for _, k := range []string{"k0", "k1"} {
		if err := os.Chtimes(s.manifestPath(k), old, old); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.GC(0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.EvictedEntries != 2 {
		t.Fatalf("evicted %d entries, want 2", res.EvictedEntries)
	}
	for _, k := range []string{"k0", "k1"} {
		if _, ok := s.Get(k, []string{"c"}); ok {
			t.Fatalf("%s survived age GC", k)
		}
	}
	for _, k := range []string{"k2", "k3"} {
		if _, ok := s.Get(k, []string{"c"}); !ok {
			t.Fatalf("%s wrongly evicted", k)
		}
	}
}

func TestGCMaxBytesEvictsLRUAndSweepsBlobs(t *testing.T) {
	s := testStore(t)
	big := strings.Repeat("x", 4096)
	for i := 0; i < 6; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), entry("m", "c", big+fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
		// Distinct, strictly increasing LRU stamps (filesystem mtime
		// granularity can be coarse), and old enough to clear gcGrace.
		ts := time.Now().Add(-2*time.Hour + time.Duration(i)*time.Minute)
		if err := os.Chtimes(s.manifestPath(fmt.Sprintf("k%d", i)), ts, ts); err != nil {
			t.Fatal(err)
		}
		blobHash := sha256.Sum256([]byte(big + fmt.Sprint(i)))
		bp := s.blobPath(hex.EncodeToString(blobHash[:]))
		if err := os.Chtimes(bp, ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.GC(3*4200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.EvictedEntries == 0 || res.EvictedBlobs == 0 {
		t.Fatalf("GC evicted nothing: %+v", res)
	}
	if res.LiveBytes > 3*4200 {
		t.Fatalf("store still %d bytes after GC to %d", res.LiveBytes, 3*4200)
	}
	// The survivors must be the most recently used keys.
	if _, ok := s.Get("k5", []string{"c"}); !ok {
		t.Fatal("most recent entry k5 evicted before older ones")
	}
	if _, ok := s.Get("k0", []string{"c"}); ok {
		t.Fatal("least recent entry k0 survived size GC")
	}
	if s.Stats().Evictions != int64(res.EvictedEntries) {
		t.Fatalf("evictions counter %d != %d", s.Stats().Evictions, res.EvictedEntries)
	}
}

// TestGCMaxBytesOnFreshStore is the CI trim scenario: a store
// populated seconds ago must still actually shrink under its byte
// budget — blobs freed by evicting their manifests are reclaimed
// immediately (the orphan grace window only protects blobs that never
// had a manifest).
func TestGCMaxBytesOnFreshStore(t *testing.T) {
	s := testStore(t)
	big := strings.Repeat("y", 8192)
	for i := 0; i < 6; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), entry("m", "c", big+fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.GC(2*8500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveBytes > 2*8500 {
		t.Fatalf("fresh store still %d bytes after GC to %d (evicted %d entries, %d blobs)",
			res.LiveBytes, 2*8500, res.EvictedEntries, res.EvictedBlobs)
	}
	if res.EvictedBlobs == 0 {
		t.Fatal("size trim freed no blob bytes")
	}
}

// TestGCAgePhaseFreesBlobBytes: bytes freed by the age phase must not
// be double-counted against the size budget (which would over-evict
// fresh entries).
func TestGCAgePhaseFreesBlobBytes(t *testing.T) {
	s := testStore(t)
	big := strings.Repeat("z", 8192)
	// Two old entries (~16K of blobs) and two fresh ones (~16K).
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), entry("m", "c", big+fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-48 * time.Hour)
	for _, k := range []string{"k0", "k1"} {
		os.Chtimes(s.manifestPath(k), old, old)
	}
	// Budget fits the two fresh entries comfortably once the old ones
	// are age-evicted; a stale running total would evict k2 as well.
	res, err := s.GC(3*8500, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.EvictedEntries != 2 {
		t.Fatalf("evicted %d entries, want only the 2 aged ones", res.EvictedEntries)
	}
	for _, k := range []string{"k2", "k3"} {
		if _, ok := s.Get(k, []string{"c"}); !ok {
			t.Fatalf("fresh entry %s over-evicted by stale size accounting", k)
		}
	}
}

func TestGCKeepsSharedBlobs(t *testing.T) {
	s := testStore(t)
	// Two keys share identical artifact content (one blob).
	for _, k := range []string{"a", "b"} {
		if err := s.Put(k, entry("m", "c", "shared text")); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-48 * time.Hour)
	os.Chtimes(s.manifestPath("a"), old, old)
	if _, err := s.GC(0, 24*time.Hour); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("b", []string{"c"}); !ok || got.Artifacts["c"] != "shared text" {
		t.Fatal("blob shared with a live manifest was swept")
	}
}

// ---------------------------------------------------------------------------
// Concurrency

// TestConcurrentHammer pounds one store from many goroutines (run
// under -race in CI): mixed Put/Get/GC traffic over a small key space,
// with periodic corruption injected, must never panic or return a
// wrong artifact.
func TestConcurrentHammer(t *testing.T) {
	dir := t.TempDir()
	const keys = 8
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := Open(dir)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key%d", (w+i)%keys)
				want := "artifact for " + k
				switch i % 5 {
				case 0:
					if err := s.Put(k, entry("m", "c", want)); err != nil {
						t.Errorf("put %s: %v", k, err)
					}
				case 3:
					if w == 0 && i%40 == 3 {
						s.GC(1<<20, 0)
					}
				case 4:
					if w == 1 && i%50 == 4 { // inject corruption mid-flight
						os.WriteFile(s.manifestPath(k), []byte("junk"), 0o644)
					}
				default:
					if got, ok := s.Get(k, []string{"c"}); ok && got.Artifacts["c"] != want {
						t.Errorf("wrong artifact for %s: %q", k, got.Artifacts["c"])
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestTwoProcessHammer runs the same mixed workload in two real child
// processes sharing one cache directory, then verifies every key reads
// back correctly. This is the cross-process crash-safety contract:
// atomic renames mean a reader never sees a partial file.
func TestTwoProcessHammer(t *testing.T) {
	if os.Getenv("ECL_CACHE_HAMMER_CHILD") != "" {
		hammerChild(t)
		return
	}
	if testing.Short() {
		t.Skip("short mode: skipping subprocess test")
	}
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("no test executable: %v", err)
	}
	var procs []*exec.Cmd
	for i := 0; i < 2; i++ {
		cmd := exec.Command(exe, "-test.run", "^TestTwoProcessHammer$", "-test.v")
		cmd.Env = append(os.Environ(),
			"ECL_CACHE_HAMMER_CHILD=1",
			"ECL_CACHE_HAMMER_DIR="+dir,
			fmt.Sprintf("ECL_CACHE_HAMMER_SEED=%d", i))
		out := &strings.Builder{}
		cmd.Stdout, cmd.Stderr = out, out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
		t.Cleanup(func() {
			if s := out.String(); strings.Contains(s, "FAIL") {
				t.Log(s)
			}
		})
	}
	for _, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("child failed: %v", err)
		}
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("key%d", i)
		if got, ok := s.Get(k, []string{"c"}); ok {
			hits++
			if got.Artifacts["c"] != "artifact for "+k {
				t.Errorf("wrong artifact for %s: %q", k, got.Artifacts["c"])
			}
		}
	}
	if hits == 0 {
		t.Fatal("no keys survived the two-process hammer")
	}
}

// hammerChild is the subprocess body of TestTwoProcessHammer.
func hammerChild(t *testing.T) {
	dir := os.Getenv("ECL_CACHE_HAMMER_DIR")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seed := os.Getenv("ECL_CACHE_HAMMER_SEED")
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key%d", i%8)
		want := "artifact for " + k
		switch i % 3 {
		case 0:
			if err := s.Put(k, entry("m", "c", want)); err != nil {
				t.Errorf("seed %s put %s: %v", seed, k, err)
			}
		case 1:
			if got, ok := s.Get(k, []string{"c"}); ok && got.Artifacts["c"] != want {
				t.Errorf("seed %s: wrong artifact for %s: %q", seed, k, got.Artifacts["c"])
			}
		default:
			if i%60 == 2 {
				s.GC(1<<20, 0)
			}
		}
	}
}

func TestClear(t *testing.T) {
	s := testStore(t)
	if err := s.Put("k", entry("m", "c", "text")); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k", []string{"c"}); ok {
		t.Fatal("entry survived Clear")
	}
	if err := s.Put("k", entry("m", "c", "text")); err != nil {
		t.Fatalf("store unusable after Clear: %v", err)
	}
	bytes, entries, err := s.Size()
	if err != nil || entries != 1 || bytes == 0 {
		t.Fatalf("Size = %d bytes, %d entries, %v", bytes, entries, err)
	}
}

func TestDefaultDirEnvOverride(t *testing.T) {
	t.Setenv(EnvDir, filepath.Join(t.TempDir(), "custom"))
	dir, err := DefaultDir()
	if err != nil {
		t.Fatal(err)
	}
	if dir != os.Getenv(EnvDir) {
		t.Fatalf("DefaultDir = %s, want $%s", dir, EnvDir)
	}
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir() != dir {
		t.Fatalf("Open(\"\") rooted at %s, want %s", s.Dir(), dir)
	}
}
