package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"testing"
)

// TestSnapshotRoundTrip files a session snapshot in the v2 subtree and
// reads it back under its content-derived key; a corrupted blob must
// come back as a miss (and be repaired), never as bad bytes.
func TestSnapshotRoundTrip(t *testing.T) {
	s := testStore(t)
	blob := []byte(`{"v":1,"backend":"efsm","module":"abro","instant":7,"state":"3"}`)
	key, err := s.PutSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(blob)
	if key != hex.EncodeToString(sum[:]) {
		t.Fatalf("key %s is not the blob's content hash", key)
	}
	got, ok := s.GetSnapshot(key)
	if !ok || string(got) != string(blob) {
		t.Fatalf("GetSnapshot = %q, %v", got, ok)
	}

	// Storing the same blob again is idempotent (same key).
	again, err := s.PutSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if again != key {
		t.Fatalf("re-put key %s != %s", again, key)
	}

	// A snapshot key does not answer as a compile-phase entry and vice
	// versa: the phase name gates retrieval.
	if e, ok := s.GetPhase(key, []string{"snapshot"}); ok && e.Phase != SnapshotPhase {
		t.Fatalf("snapshot entry leaked into phase %q", e.Phase)
	}
	if _, ok := s.GetSnapshot("0000000000000000000000000000000000000000000000000000000000000000"); ok {
		t.Fatal("unknown key hit")
	}

	// Corrupt the stored blob on disk: the hash-verified read must
	// report a miss.
	hash := hex.EncodeToString(sum[:])
	path := s.blobPathIn(s.v2, hash)
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.GetSnapshot(key); ok {
		t.Fatalf("corrupt snapshot served: %q", got)
	}
}
