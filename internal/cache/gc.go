package cache

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// gcGrace protects very recent orphan blobs (and tmp files) from the
// sweep: a concurrent Put writes blobs before its manifest, so a blob
// may legitimately be referenced by no manifest for a moment. Blobs
// that stop being referenced because GC itself evicted their manifest
// are freed immediately — the GC lock is held, and a racing Put that
// loses a shared blob just repairs on the next miss.
const gcGrace = time.Hour

// GCResult reports one GC pass.
type GCResult struct {
	// EvictedEntries is the number of manifests removed (design and
	// phase manifests alike).
	EvictedEntries int
	// EvictedBlobs is the number of blob files removed.
	EvictedBlobs int
	// FreedBytes is the total size of everything removed.
	FreedBytes int64
	// LiveBytes and LiveEntries describe the store after the pass.
	LiveBytes   int64
	LiveEntries int
}

type gcEntry struct {
	root  string // subtree the entry lives in (blobs are per-subtree)
	key   string
	path  string
	size  int64
	mtime time.Time
	blobs []string
}

// gcTree is the per-subtree blob bookkeeping for one GC pass.
type gcTree struct {
	blobSize map[string]int64
	blobTime map[string]time.Time
	refs     map[string]int
}

// GC trims the store to the given bounds using LRU order (a Get hit
// refreshes a manifest's clock). maxAge > 0 evicts entries unused for
// longer; maxBytes > 0 then evicts least-recently-used entries until
// the store fits. Both schema subtrees (v1 design manifests and v2
// phase manifests) share one LRU clock and one byte budget. Evicting
// an entry immediately frees the blobs only it referenced; orphan
// blobs never referenced by any manifest are swept too unless very
// recent (they may belong to an in-flight Put). Zero bounds skip their
// respective phase, so GC(0, 0) is just an orphan sweep.
func (s *Store) GC(maxBytes int64, maxAge time.Duration) (GCResult, error) {
	unlock := s.lock("gc.lock", 5*time.Second)
	defer unlock()

	var res GCResult
	now := time.Now()

	// Inventory manifests (dropping corrupt ones) and blobs in both
	// subtrees, and refcount every blob so eviction can free
	// exclusively-owned blobs in O(1).
	var entries []gcEntry
	trees := map[string]*gcTree{}
	for _, root := range []string{s.v1, s.v2} {
		root := root
		tr := &gcTree{
			blobSize: map[string]int64{},
			blobTime: map[string]time.Time{},
			refs:     map[string]int{},
		}
		trees[root] = tr
		filepath.WalkDir(filepath.Join(root, "manifests"), func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
				return nil
			}
			info, err := d.Info()
			if err != nil {
				return nil
			}
			key := d.Name()[:len(d.Name())-len(".json")]
			var blobs []string
			if root == s.v1 {
				m, ok := s.readManifest(key)
				if !ok {
					return nil // corrupt: readManifest already deleted it
				}
				for _, h := range m.Artifacts {
					blobs = append(blobs, h)
				}
			} else {
				m, ok := s.readPhaseManifest(key)
				if !ok {
					return nil
				}
				for _, h := range m.Blobs {
					blobs = append(blobs, h)
				}
			}
			entries = append(entries, gcEntry{
				root: root, key: key, path: path,
				size: info.Size(), mtime: info.ModTime(), blobs: blobs,
			})
			return nil
		})
		filepath.WalkDir(filepath.Join(root, "blobs"), func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return nil
			}
			if info, err := d.Info(); err == nil {
				tr.blobSize[d.Name()] = info.Size()
				tr.blobTime[d.Name()] = info.ModTime()
			}
			return nil
		})
	}
	for _, e := range entries {
		for _, h := range e.blobs {
			trees[e.root].refs[h]++
		}
	}
	// The size phase targets only bytes it could actually reclaim:
	// grace-protected orphan blobs (likely an in-flight Put) are
	// excluded from the running total, otherwise one large recent
	// orphan would make the loop evict every live entry without ever
	// reaching the budget.
	total := int64(0)
	for _, tr := range trees {
		for h, sz := range tr.blobSize {
			if tr.refs[h] == 0 && now.Sub(tr.blobTime[h]) < gcGrace {
				continue
			}
			total += sz
		}
	}
	for _, e := range entries {
		total += e.size
	}

	// evict removes one manifest and every blob that thereby becomes
	// unreferenced, keeping the running total exact for the size phase.
	evict := func(e gcEntry) {
		os.Remove(e.path)
		total -= e.size
		res.EvictedEntries++
		res.FreedBytes += e.size
		tr := trees[e.root]
		for _, h := range e.blobs {
			tr.refs[h]--
			if tr.refs[h] > 0 {
				continue
			}
			sz, onDisk := tr.blobSize[h]
			if !onDisk {
				continue
			}
			if os.Remove(s.blobPathIn(e.root, h)) == nil {
				res.EvictedBlobs++
				res.FreedBytes += sz
				total -= sz
				delete(tr.blobSize, h)
			}
		}
	}

	// Oldest first: age eviction, then LRU size trimming.
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	live := entries[:0]
	for _, e := range entries {
		if maxAge > 0 && now.Sub(e.mtime) > maxAge {
			evict(e)
			continue
		}
		live = append(live, e)
	}
	if maxBytes > 0 {
		for len(live) > 0 && total > maxBytes {
			evict(live[0])
			live = live[1:]
		}
	}

	// Sweep orphan blobs — never referenced by any manifest we saw —
	// with the grace window, plus stale tmp files.
	for root, tr := range trees {
		for h, sz := range tr.blobSize {
			if tr.refs[h] > 0 || now.Sub(tr.blobTime[h]) < gcGrace {
				continue
			}
			if os.Remove(s.blobPathIn(root, h)) == nil {
				res.EvictedBlobs++
				res.FreedBytes += sz
			}
		}
		filepath.WalkDir(filepath.Join(root, "tmp"), func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return nil
			}
			if info, err := d.Info(); err == nil && now.Sub(info.ModTime()) > gcGrace {
				os.Remove(path)
			}
			return nil
		})
	}

	s.evictions.Add(int64(res.EvictedEntries))
	var err error
	res.LiveBytes, res.LiveEntries, err = s.Size()
	return res, err
}
