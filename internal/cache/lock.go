package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// lockStale is how old a lock file must be before another process may
// break it (covers crashed holders; cache operations are far faster).
const lockStale = 30 * time.Second

// lockSeq disambiguates locks taken by one process.
var lockSeq atomic.Int64

// writeLockToken writes the holder's token into a freshly created lock
// file. It is a variable so tests can inject write failures (a short
// or failed write must not leave an unreleasable lock behind).
var writeLockToken = func(f *os.File, token string) error {
	_, err := f.WriteString(token)
	return err
}

// lock acquires a best-effort cross-process lock file under the store
// root and returns its release function. It spins (with backoff) up to
// wait, breaking locks older than lockStale; on timeout it proceeds
// without the lock — every critical section it guards is also safe,
// just less efficient, under a lost race thanks to atomic renames.
//
// Each lock file carries its holder's token, and release only removes
// the file while it still holds that token (via an atomic
// rename-aside), so a holder that outlived lockStale and was broken
// cannot delete its successor's live lock.
func (s *Store) lock(name string, wait time.Duration) (unlock func()) {
	path := filepath.Join(s.v1, "tmp", name)
	token := fmt.Sprintf("%d-%d", os.Getpid(), lockSeq.Add(1))
	deadline := time.Now().Add(wait)
	backoff := time.Millisecond
	for {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			werr := writeLockToken(f, token)
			cerr := f.Close()
			if werr == nil && cerr == nil {
				return func() { s.unlock(path, token) }
			}
			// A failed or short token write leaves a lock file no one
			// can release (unlock only removes a matching token), which
			// would stall every contender until the stale break. Drop
			// the bad file and retry within the deadline.
			os.Remove(path)
			if time.Now().After(deadline) {
				return func() {}
			}
			time.Sleep(backoff)
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		if info, serr := os.Stat(path); serr == nil && time.Since(info.ModTime()) > lockStale {
			// Break the stale lock by renaming it aside: rename is
			// atomic, so exactly one contender wins the break and a
			// fresh lock taken between the stat and the break is never
			// deleted out from under its holder (a plain Remove could
			// do that).
			stale := fmt.Sprintf("%s.stale.%s", path, token)
			if os.Rename(path, stale) == nil {
				os.Remove(stale)
			}
			continue
		}
		if time.Now().After(deadline) {
			return func() {} // degrade: unlocked but still atomic-rename safe
		}
		time.Sleep(backoff)
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
}

// unlock releases a lock only if this holder still owns it: a holder
// that ran past lockStale and was broken finds its successor's token
// in the file and leaves it alone. (The read-then-remove pair is not
// atomic, but the gap is microseconds while a takeover additionally
// requires the lock to age past lockStale — and even a lost race only
// degrades the guarded merge to last-wins, which the store's
// atomic-rename discipline already tolerates.)
func (s *Store) unlock(path, token string) {
	data, err := os.ReadFile(path)
	if err == nil && string(data) == token {
		os.Remove(path)
	}
}
