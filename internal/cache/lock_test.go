package cache

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// TestLockRetriesAfterFailedTokenWrite is the regression test for the
// ignored token-write error: a failed write used to leave a lock file
// whose token never matched, so unlock refused to remove it and every
// contender stalled until the 30s stale break. The fix removes the bad
// file and retries, so the lock is still acquired — with a token that
// round-trips through unlock.
func TestLockRetriesAfterFailedTokenWrite(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	var fails atomic.Int32
	fails.Store(2)
	orig := writeLockToken
	writeLockToken = func(f *os.File, token string) error {
		if fails.Add(-1) >= 0 {
			return errors.New("injected write failure")
		}
		return orig(f, token)
	}
	defer func() { writeLockToken = orig }()

	start := time.Now()
	unlock := s.lock("regress.lock", 5*time.Second)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("lock took %v; a failed token write must retry, not stall", elapsed)
	}

	// The acquired lock must carry a readable, correct token: a second
	// contender's unlock-by-token discipline depends on it.
	path := filepath.Join(s.v1, "tmp", "regress.lock")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("lock file unreadable after acquisition: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("lock file holds an empty token")
	}

	// unlock must recognize its own token and remove the file — the
	// very step the original bug broke.
	unlock()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("lock file survived unlock (stat err=%v): token mismatch regression", err)
	}

	// The lock is immediately re-acquirable without waiting for the
	// stale break.
	start = time.Now()
	unlock2 := s.lock("regress.lock", 5*time.Second)
	defer unlock2()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("re-acquisition took %v; the lock was not cleanly released", elapsed)
	}
}
