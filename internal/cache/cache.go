// Package cache is a persistent, content-addressed artifact store: the
// on-disk second tier behind internal/driver's in-memory design cache,
// so separate eclc processes (and separate CI runs) pay for a design
// once per content hash.
//
// The store keeps two schema subtrees side by side under its root
// (default os.UserCacheDir()/ecl, overridable with $ECL_CACHE_DIR):
//
//	<root>/v1/manifests/<aa>/<design-key>.json   whole-design artifacts
//	<root>/v1/blobs/<aa>/<sha256-of-content>
//	<root>/v1/tmp/...
//	<root>/v2/manifests/<aa>/<phase-key>.json    per-phase snapshots
//	<root>/v2/blobs/<aa>/<sha256-of-content>
//	<root>/v2/tmp/...
//
// v1 manifests map one *design* key (source + module + options hash)
// to its rendered artifact set — the fast path that serves a fully
// unchanged rebuild without running any compiler phase. v2 manifests
// map one *phase* key (derived from the phase's inputs, see
// internal/pipeline) to that phase's serialized output snapshot, so an
// edited design resumes compilation at its first dirty phase and
// replays everything downstream that still matches. The two subtrees
// age independently: a store written by an older build keeps its v1
// entries readable, and a v2-aware build simply starts populating the
// second subtree alongside.
//
// Blobs are content-addressed (the file name is the SHA-256 of the
// bytes) and sharded by their first two hex digits; a manifest maps
// artifact names to blob hashes. Every write goes through a temp file
// in the subtree's tmp/ followed by an atomic rename on the same
// filesystem, so readers never observe a partial file and concurrent
// writers of the same content converge on identical bytes. Corrupt or
// truncated manifests and blobs are detected (JSON/shape validation
// for manifests, hash verification for blobs), treated as misses, and
// deleted so the next Put repairs them — never an error to the build.
//
// Mutual exclusion across processes uses best-effort lock files
// (manifest read-modify-write merges, and the GC sweep); in-process
// deduplication is the driver's single-flight, and the atomic-rename
// discipline keeps even unlocked races safe, just possibly wasteful.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// SchemaVersion is the on-disk format version of the whole-design
// subtree; it names the v1/... paths and is checked inside every
// design manifest.
const SchemaVersion = 1

// PhaseSchemaVersion is the on-disk format version of the phase-keyed
// subtree; it names the v2/... paths and is checked inside every phase
// manifest.
const PhaseSchemaVersion = 2

// EnvDir is the environment variable overriding the default store
// location.
const EnvDir = "ECL_CACHE_DIR"

// DefaultDir returns the store root used when no directory is
// configured: $ECL_CACHE_DIR, else os.UserCacheDir()/ecl.
func DefaultDir() (string, error) {
	if dir := os.Getenv(EnvDir); dir != "" {
		return dir, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("cache: no user cache dir (set %s): %w", EnvDir, err)
	}
	return filepath.Join(base, "ecl"), nil
}

// Entry is one design key's cached state: the resolved module name and
// the artifact texts by artifact key (the driver's target keys).
type Entry struct {
	Module    string
	Artifacts map[string]string
}

// PhaseEntry is one phase key's cached state: the pipeline phase that
// produced it and its named snapshot blobs (serialized IR, rendered
// artifact text, ...).
type PhaseEntry struct {
	Phase string
	Blobs map[string]string
}

// Stats counts store traffic since Open. Hits/Misses/Puts cover the
// v1 design tier, PhaseHits/PhaseMisses/PhasePuts the v2 phase tier —
// kept separate so callers can report whole-design replays and
// per-phase resumption independently. Evictions accumulate across GC
// calls; Errors counts corruption and I/O problems on either path —
// swallowed as misses on reads, returned to the caller on writes.
type Stats struct {
	Hits, Misses, Puts                int64
	PhaseHits, PhaseMisses, PhasePuts int64
	Evictions, Errors                 int64
}

// Tier is the store shape the build consults, tier-agnostically: the
// on-disk Store implements it, and so does the HTTP client in
// internal/cache/remote, which is how a shared remote cache slots in
// behind the same calls as the local disk. Get/GetPhase report misses
// (never errors); Put/PutPhase are best-effort for callers that treat
// persistence as an optimization.
type Tier interface {
	Get(key string, want []string) (*Entry, bool)
	Put(key string, e *Entry) error
	GetPhase(key string, want []string) (*PhaseEntry, bool)
	PutPhase(key string, e *PhaseEntry) error
}

// Store is a persistent artifact cache rooted at one directory. It is
// safe for concurrent use by multiple goroutines and multiple
// processes.
type Store struct {
	dir    string // store root (holds the v1/ and v2/ subtrees)
	v1, v2 string // versioned subtree roots

	hits, misses, puts                atomic.Int64
	phaseHits, phaseMisses, phasePuts atomic.Int64
	evictions, errors                 atomic.Int64
}

// Open returns a store rooted at dir ("" means DefaultDir), creating
// the directory trees as needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		var err error
		dir, err = DefaultDir()
		if err != nil {
			return nil, err
		}
	}
	s := &Store{
		dir: dir,
		v1:  filepath.Join(dir, fmt.Sprintf("v%d", SchemaVersion)),
		v2:  filepath.Join(dir, fmt.Sprintf("v%d", PhaseSchemaVersion)),
	}
	for _, root := range []string{s.v1, s.v2} {
		for _, sub := range []string{"manifests", "blobs", "tmp"} {
			if err := os.MkdirAll(filepath.Join(root, sub), 0o755); err != nil {
				return nil, fmt.Errorf("cache: %w", err)
			}
		}
	}
	return s, nil
}

// Dir returns the store's root directory (without the version
// components).
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		PhaseHits:   s.phaseHits.Load(),
		PhaseMisses: s.phaseMisses.Load(),
		PhasePuts:   s.phasePuts.Load(),
		Evictions:   s.evictions.Load(),
		Errors:      s.errors.Load(),
	}
}

// manifest is the on-disk record for one design key (v1 subtree).
type manifest struct {
	Version   int               `json:"version"`
	Key       string            `json:"key"`
	Module    string            `json:"module"`
	Artifacts map[string]string `json:"artifacts"` // artifact key -> blob hash
}

// valid reports whether a decoded manifest has the shape Get relies
// on.
func (m *manifest) valid(key string) bool {
	return m.Version == SchemaVersion && m.Key == key && m.Module != "" && len(m.Artifacts) > 0
}

// phaseManifest is the on-disk record for one phase key (v2 subtree).
type phaseManifest struct {
	Version int               `json:"version"`
	Key     string            `json:"key"`
	Phase   string            `json:"phase"`
	Blobs   map[string]string `json:"blobs"` // blob name -> blob hash
}

func (m *phaseManifest) valid(key string) bool {
	return m.Version == PhaseSchemaVersion && m.Key == key && m.Phase != "" && len(m.Blobs) > 0
}

// Get looks up a design key and resolves the wanted artifact keys. It
// returns ok=false — a miss — when the manifest is absent, corrupt, or
// lacks any wanted artifact, or when a referenced blob is missing or
// fails hash verification. Corrupt files are deleted so the next Put
// repairs them. A hit refreshes the manifest's LRU clock.
func (s *Store) Get(key string, want []string) (*Entry, bool) {
	m, ok := s.readManifest(key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	e := &Entry{Module: m.Module, Artifacts: make(map[string]string, len(want))}
	for _, k := range want {
		hash, ok := m.Artifacts[k]
		if !ok {
			s.misses.Add(1)
			return nil, false
		}
		text, ok := s.readBlob(s.v1, hash)
		if !ok {
			// A missing or corrupt blob invalidates the manifest that
			// references it: drop both so the key rebuilds cleanly.
			os.Remove(s.manifestPath(key))
			s.misses.Add(1)
			return nil, false
		}
		e.Artifacts[k] = text
	}
	s.hits.Add(1)
	now := time.Now()
	os.Chtimes(s.manifestPath(key), now, now) // LRU touch; best-effort
	return e, true
}

// Put stores the entry's artifacts as blobs and writes (or merges
// into) the key's manifest. Artifacts accumulate across Puts of the
// same key, so different target sets share one manifest.
func (s *Store) Put(key string, e *Entry) error {
	if e.Module == "" || len(e.Artifacts) == 0 {
		return fmt.Errorf("cache: refusing to store empty entry for %s", key)
	}
	hashes := make(map[string]string, len(e.Artifacts))
	for k, text := range e.Artifacts {
		h, err := s.writeBlob(s.v1, text)
		if err != nil {
			s.errors.Add(1)
			return err
		}
		hashes[k] = h
	}
	return s.MergeManifest(key, e.Module, hashes)
}

// MergeManifest merges artifact-name → blob-hash references into the
// key's v1 manifest, for callers (the remote cache server) whose blobs
// arrive separately. The referenced blobs must already be in the store;
// Put is the blob-writing front end over it.
func (s *Store) MergeManifest(key, module string, hashes map[string]string) error {
	if module == "" || len(hashes) == 0 {
		return fmt.Errorf("cache: refusing to store empty manifest for %s", key)
	}
	// Merge with any existing manifest under a per-key lock so two
	// processes caching different targets of one design don't drop each
	// other's artifacts. A lost lock (timeout) degrades to last-wins.
	unlock := s.lock(key+".lock", 2*time.Second)
	defer unlock()
	m, ok := s.readManifest(key)
	if !ok {
		m = &manifest{Version: SchemaVersion, Key: key, Module: module, Artifacts: hashes}
	} else {
		for k, h := range hashes {
			m.Artifacts[k] = h
		}
		m.Module = module
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := s.writeFileAtomic(s.v1, s.manifestPath(key), data); err != nil {
		s.errors.Add(1)
		return err
	}
	s.puts.Add(1)
	return nil
}

// GetPhase looks up a phase key and resolves the wanted blob names,
// with the same miss-and-repair discipline as Get. A hit refreshes the
// phase manifest's LRU clock.
func (s *Store) GetPhase(key string, want []string) (*PhaseEntry, bool) {
	m, ok := s.readPhaseManifest(key)
	if !ok {
		s.phaseMisses.Add(1)
		return nil, false
	}
	e := &PhaseEntry{Phase: m.Phase, Blobs: make(map[string]string, len(want))}
	for _, k := range want {
		hash, ok := m.Blobs[k]
		if !ok {
			s.phaseMisses.Add(1)
			return nil, false
		}
		text, ok := s.readBlob(s.v2, hash)
		if !ok {
			os.Remove(s.phaseManifestPath(key))
			s.phaseMisses.Add(1)
			return nil, false
		}
		e.Blobs[k] = text
	}
	s.phaseHits.Add(1)
	now := time.Now()
	os.Chtimes(s.phaseManifestPath(key), now, now) // LRU touch; best-effort
	return e, true
}

// PutPhase stores one phase snapshot. Phase manifests are written
// whole (a phase's blob set is produced in one shot, so there is
// nothing to merge); concurrent writers of the same key converge via
// the atomic rename.
func (s *Store) PutPhase(key string, e *PhaseEntry) error {
	if e.Phase == "" || len(e.Blobs) == 0 {
		return fmt.Errorf("cache: refusing to store empty phase entry for %s", key)
	}
	hashes := make(map[string]string, len(e.Blobs))
	for k, text := range e.Blobs {
		h, err := s.writeBlob(s.v2, text)
		if err != nil {
			s.errors.Add(1)
			return err
		}
		hashes[k] = h
	}
	return s.PutPhaseManifest(key, e.Phase, hashes)
}

// PutPhaseManifest writes the key's v2 manifest from blob-name →
// blob-hash references, for callers (the remote cache server) whose
// blobs arrive separately; PutPhase is the blob-writing front end.
func (s *Store) PutPhaseManifest(key, phase string, hashes map[string]string) error {
	if phase == "" || len(hashes) == 0 {
		return fmt.Errorf("cache: refusing to store empty phase manifest for %s", key)
	}
	m := &phaseManifest{Version: PhaseSchemaVersion, Key: key, Phase: phase, Blobs: hashes}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := s.writeFileAtomic(s.v2, s.phaseManifestPath(key), data); err != nil {
		s.errors.Add(1)
		return err
	}
	s.phasePuts.Add(1)
	return nil
}

// SnapshotPhase is the pseudo-phase name session snapshots are filed
// under in the v2 subtree, and snapshotBlobName the single blob each
// snapshot manifest references. Storing evicted execution sessions as
// ordinary phase entries means they inherit everything the subtree
// already guarantees: hash-verified reads, corrupt-entry repair, LRU
// GC, and a line in the `eclc cache stats` phase inventory.
const (
	SnapshotPhase    = "session-snapshot"
	snapshotBlobName = "snapshot"
)

// PutSnapshot stores a serialized execution-session snapshot (an
// exec.SnapshotBlob encoding) and returns the content-derived key that
// retrieves it.
func (s *Store) PutSnapshot(blob []byte) (string, error) {
	sum := sha256.Sum256(blob)
	key := hex.EncodeToString(sum[:])
	err := s.PutPhase(key, &PhaseEntry{
		Phase: SnapshotPhase,
		Blobs: map[string]string{snapshotBlobName: string(blob)},
	})
	if err != nil {
		return "", err
	}
	return key, nil
}

// GetSnapshot retrieves a snapshot stored by PutSnapshot. Like every
// store read, a missing, corrupt, or truncated entry is a miss, never
// an error.
func (s *Store) GetSnapshot(key string) ([]byte, bool) {
	e, ok := s.GetPhase(key, []string{snapshotBlobName})
	if !ok || e.Phase != SnapshotPhase {
		return nil, false
	}
	return []byte(e.Blobs[snapshotBlobName]), true
}

// PhaseInfo summarizes one pipeline phase's footprint in the v2
// subtree.
type PhaseInfo struct {
	Entries int
	Bytes   int64 // manifest bytes plus referenced blob bytes
}

// PhaseInventory walks the v2 subtree and groups its entries by the
// pipeline phase that produced them (the `eclc cache stats` table).
// Blobs shared by several manifests of one phase are counted once per
// phase.
func (s *Store) PhaseInventory() (map[string]PhaseInfo, error) {
	out := make(map[string]PhaseInfo)
	seen := make(map[string]map[string]bool) // phase -> blob hash -> counted
	err := filepath.WalkDir(filepath.Join(s.v2, "manifests"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return nil
		}
		key := d.Name()[:len(d.Name())-len(".json")]
		m, ok := s.readPhaseManifest(key)
		if !ok {
			return nil
		}
		info := out[m.Phase]
		info.Entries++
		if fi, err := d.Info(); err == nil {
			info.Bytes += fi.Size()
		}
		if seen[m.Phase] == nil {
			seen[m.Phase] = make(map[string]bool)
		}
		for _, h := range m.Blobs {
			if seen[m.Phase][h] {
				continue
			}
			seen[m.Phase][h] = true
			if fi, err := os.Stat(s.blobPathIn(s.v2, h)); err == nil {
				info.Bytes += fi.Size()
			}
		}
		out[m.Phase] = info
		return nil
	})
	return out, err
}

// Clear removes every manifest and blob in both subtrees, leaving an
// empty, usable store.
func (s *Store) Clear() error {
	for _, root := range []string{s.v1, s.v2} {
		for _, sub := range []string{"manifests", "blobs", "tmp"} {
			p := filepath.Join(root, sub)
			if err := os.RemoveAll(p); err != nil {
				return err
			}
			if err := os.MkdirAll(p, 0o755); err != nil {
				return err
			}
		}
	}
	return nil
}

// Size walks both subtrees and returns their total bytes (manifests
// plus blobs) and entry (manifest) count.
func (s *Store) Size() (bytes int64, entries int, err error) {
	for _, root := range []string{s.v1, s.v2} {
		werr := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return nil // a file vanishing mid-walk is fine
			}
			info, err := d.Info()
			if err != nil {
				return nil
			}
			bytes += info.Size()
			if filepath.Ext(path) == ".json" {
				entries++
			}
			return nil
		})
		if werr != nil {
			err = werr
		}
	}
	return bytes, entries, err
}

// ---------------------------------------------------------------------------
// Schema-addressed accessors (the remote cache server's storage API)

var _ Tier = (*Store)(nil)

// root maps a schema version (SchemaVersion or PhaseSchemaVersion) to
// its subtree root; other versions report false.
func (s *Store) root(version int) (string, bool) {
	switch version {
	case SchemaVersion:
		return s.v1, true
	case PhaseSchemaVersion:
		return s.v2, true
	}
	return "", false
}

// HasBlob reports whether the given schema subtree holds a blob of the
// hash (by existence; content is verified on read).
func (s *Store) HasBlob(version int, hash string) bool {
	root, ok := s.root(version)
	if !ok {
		return false
	}
	_, err := os.Stat(s.blobPathIn(root, hash))
	return err == nil
}

// ReadBlob returns the hash-verified content of one blob from the
// given schema subtree; corrupt blobs are deleted and read as absent.
func (s *Store) ReadBlob(version int, hash string) (string, bool) {
	root, ok := s.root(version)
	if !ok {
		return "", false
	}
	return s.readBlob(root, hash)
}

// WriteBlob stores content in the given schema subtree under its
// SHA-256 and returns the hash.
func (s *Store) WriteBlob(version int, text string) (string, error) {
	root, ok := s.root(version)
	if !ok {
		return "", fmt.Errorf("cache: unknown schema version %d", version)
	}
	return s.writeBlob(root, text)
}

// Manifest returns a design key's raw v1 manifest: the module name and
// the artifact-name → blob-hash map (not the blob contents).
func (s *Store) Manifest(key string) (module string, artifacts map[string]string, ok bool) {
	m, ok := s.readManifest(key)
	if !ok {
		return "", nil, false
	}
	return m.Module, m.Artifacts, true
}

// PhaseManifest returns a phase key's raw v2 manifest: the producing
// phase and the blob-name → blob-hash map.
func (s *Store) PhaseManifest(key string) (phase string, blobs map[string]string, ok bool) {
	m, ok := s.readPhaseManifest(key)
	if !ok {
		return "", nil, false
	}
	return m.Phase, m.Blobs, true
}

// ---------------------------------------------------------------------------
// Paths and file primitives

func shard(hash string) string {
	if len(hash) < 2 {
		return "xx"
	}
	return hash[:2]
}

func (s *Store) manifestPath(key string) string {
	return filepath.Join(s.v1, "manifests", shard(key), key+".json")
}

func (s *Store) phaseManifestPath(key string) string {
	return filepath.Join(s.v2, "manifests", shard(key), key+".json")
}

func (s *Store) blobPath(hash string) string { return s.blobPathIn(s.v1, hash) }

func (s *Store) blobPathIn(root, hash string) string {
	return filepath.Join(root, "blobs", shard(hash), hash)
}

// readManifest loads and validates a design key's manifest, deleting
// it on corruption. Swallowed failures other than plain absence count
// toward the Errors stat.
func (s *Store) readManifest(key string) (*manifest, bool) {
	path := s.manifestPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.errors.Add(1)
		}
		return nil, false
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil || !m.valid(key) {
		s.errors.Add(1)
		os.Remove(path)
		return nil, false
	}
	return &m, true
}

// readPhaseManifest is readManifest for the v2 subtree.
func (s *Store) readPhaseManifest(key string) (*phaseManifest, bool) {
	path := s.phaseManifestPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.errors.Add(1)
		}
		return nil, false
	}
	var m phaseManifest
	if err := json.Unmarshal(data, &m); err != nil || !m.valid(key) {
		s.errors.Add(1)
		os.Remove(path)
		return nil, false
	}
	return &m, true
}

// readBlob loads a blob from the given subtree and verifies its
// content hash, deleting it on mismatch (truncation, garbage, partial
// write from a crashed non-atomic filesystem).
func (s *Store) readBlob(root, hash string) (string, bool) {
	path := s.blobPathIn(root, hash)
	data, err := os.ReadFile(path)
	if err != nil {
		s.errors.Add(1) // a referenced blob should exist and be readable
		return "", false
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != hash {
		s.errors.Add(1)
		os.Remove(path)
		return "", false
	}
	return string(data), true
}

// writeBlob stores content in the given subtree under its hash
// (idempotent: an existing blob of the same hash is left alone) and
// returns the hash.
func (s *Store) writeBlob(root, text string) (string, error) {
	sum := sha256.Sum256([]byte(text))
	hash := hex.EncodeToString(sum[:])
	path := s.blobPathIn(root, hash)
	if _, err := os.Stat(path); err == nil {
		return hash, nil
	}
	if err := s.writeFileAtomic(root, path, []byte(text)); err != nil {
		return "", err
	}
	return hash, nil
}

// writeFileAtomic writes via a temp file in the subtree's tmp/ dir and
// renames into place, so concurrent readers and crashed writers never
// expose partial content.
func (s *Store) writeFileAtomic(root, path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Join(root, "tmp"), "w*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
