// Package cache is a persistent, content-addressed artifact store: the
// on-disk second tier behind internal/driver's in-memory design cache,
// so separate eclc processes (and separate CI runs) pay for a design
// once per content hash.
//
// On-disk layout, under the store root (default
// os.UserCacheDir()/ecl, overridable with $ECL_CACHE_DIR):
//
//	<root>/v1/manifests/<aa>/<design-key>.json
//	<root>/v1/blobs/<aa>/<sha256-of-content>
//	<root>/v1/tmp/...
//	<root>/v1/gc.lock
//
// The schema version is part of the path, so a format change simply
// starts a fresh subtree instead of misreading old state. Blobs are
// content-addressed (the file name is the SHA-256 of the bytes) and
// sharded by their first two hex digits; a manifest per design key
// maps artifact names to blob hashes. Every write goes through a temp
// file in tmp/ followed by an atomic rename on the same filesystem, so
// readers never observe a partial file and concurrent writers of the
// same content converge on identical bytes. Corrupt or truncated
// manifests and blobs are detected (JSON/shape validation for
// manifests, hash verification for blobs), treated as misses, and
// deleted so the next Put repairs them — never an error to the build.
//
// Mutual exclusion across processes uses best-effort lock files
// (manifest read-modify-write merges, and the GC sweep); in-process
// deduplication is the driver's single-flight, and the atomic-rename
// discipline keeps even unlocked races safe, just possibly wasteful.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// SchemaVersion is the on-disk format version; it names the versioned
// subtree (v1/...) and is checked inside every manifest.
const SchemaVersion = 1

// EnvDir is the environment variable overriding the default store
// location.
const EnvDir = "ECL_CACHE_DIR"

// DefaultDir returns the store root used when no directory is
// configured: $ECL_CACHE_DIR, else os.UserCacheDir()/ecl.
func DefaultDir() (string, error) {
	if dir := os.Getenv(EnvDir); dir != "" {
		return dir, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("cache: no user cache dir (set %s): %w", EnvDir, err)
	}
	return filepath.Join(base, "ecl"), nil
}

// Entry is one design key's cached state: the resolved module name and
// the artifact texts by artifact key (the driver's target keys).
type Entry struct {
	Module    string
	Artifacts map[string]string
}

// Stats counts store traffic since Open. Evictions accumulate across
// GC calls; Errors counts corruption and I/O problems on either path —
// swallowed as misses on reads, returned to the caller on writes.
type Stats struct {
	Hits, Misses, Puts, Evictions, Errors int64
}

// Store is a persistent artifact cache rooted at one directory. It is
// safe for concurrent use by multiple goroutines and multiple
// processes.
type Store struct {
	root string // versioned subtree: <dir>/v1

	hits, misses, puts, evictions, errors atomic.Int64
}

// Open returns a store rooted at dir ("" means DefaultDir), creating
// the directory tree as needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		var err error
		dir, err = DefaultDir()
		if err != nil {
			return nil, err
		}
	}
	root := filepath.Join(dir, fmt.Sprintf("v%d", SchemaVersion))
	for _, sub := range []string{"manifests", "blobs", "tmp"} {
		if err := os.MkdirAll(filepath.Join(root, sub), 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	return &Store{root: root}, nil
}

// Dir returns the store's root directory (without the version
// component).
func (s *Store) Dir() string { return filepath.Dir(s.root) }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		Evictions: s.evictions.Load(),
		Errors:    s.errors.Load(),
	}
}

// manifest is the on-disk record for one design key.
type manifest struct {
	Version   int               `json:"version"`
	Key       string            `json:"key"`
	Module    string            `json:"module"`
	Artifacts map[string]string `json:"artifacts"` // artifact key -> blob hash
}

// valid reports whether a decoded manifest has the shape Get relies
// on.
func (m *manifest) valid(key string) bool {
	return m.Version == SchemaVersion && m.Key == key && m.Module != "" && len(m.Artifacts) > 0
}

// Get looks up a design key and resolves the wanted artifact keys. It
// returns ok=false — a miss — when the manifest is absent, corrupt, or
// lacks any wanted artifact, or when a referenced blob is missing or
// fails hash verification. Corrupt files are deleted so the next Put
// repairs them. A hit refreshes the manifest's LRU clock.
func (s *Store) Get(key string, want []string) (*Entry, bool) {
	m, ok := s.readManifest(key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	e := &Entry{Module: m.Module, Artifacts: make(map[string]string, len(want))}
	for _, k := range want {
		hash, ok := m.Artifacts[k]
		if !ok {
			s.misses.Add(1)
			return nil, false
		}
		text, ok := s.readBlob(hash)
		if !ok {
			// A missing or corrupt blob invalidates the manifest that
			// references it: drop both so the key rebuilds cleanly.
			os.Remove(s.manifestPath(key))
			s.misses.Add(1)
			return nil, false
		}
		e.Artifacts[k] = text
	}
	s.hits.Add(1)
	now := time.Now()
	os.Chtimes(s.manifestPath(key), now, now) // LRU touch; best-effort
	return e, true
}

// Put stores the entry's artifacts as blobs and writes (or merges
// into) the key's manifest. Artifacts accumulate across Puts of the
// same key, so different target sets share one manifest.
func (s *Store) Put(key string, e *Entry) error {
	if e.Module == "" || len(e.Artifacts) == 0 {
		return fmt.Errorf("cache: refusing to store empty entry for %s", key)
	}
	hashes := make(map[string]string, len(e.Artifacts))
	for k, text := range e.Artifacts {
		h, err := s.writeBlob(text)
		if err != nil {
			s.errors.Add(1)
			return err
		}
		hashes[k] = h
	}

	// Merge with any existing manifest under a per-key lock so two
	// processes caching different targets of one design don't drop each
	// other's artifacts. A lost lock (timeout) degrades to last-wins.
	unlock := s.lock(key+".lock", 2*time.Second)
	defer unlock()
	m, ok := s.readManifest(key)
	if !ok {
		m = &manifest{Version: SchemaVersion, Key: key, Module: e.Module, Artifacts: hashes}
	} else {
		for k, h := range hashes {
			m.Artifacts[k] = h
		}
		m.Module = e.Module
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := s.writeFileAtomic(s.manifestPath(key), data); err != nil {
		s.errors.Add(1)
		return err
	}
	s.puts.Add(1)
	return nil
}

// Clear removes every manifest and blob (the whole versioned subtree),
// leaving an empty, usable store.
func (s *Store) Clear() error {
	for _, sub := range []string{"manifests", "blobs", "tmp"} {
		p := filepath.Join(s.root, sub)
		if err := os.RemoveAll(p); err != nil {
			return err
		}
		if err := os.MkdirAll(p, 0o755); err != nil {
			return err
		}
	}
	return nil
}

// Size walks the store and returns its total bytes (manifests plus
// blobs) and entry (manifest) count.
func (s *Store) Size() (bytes int64, entries int, err error) {
	err = filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil // a file vanishing mid-walk is fine
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		bytes += info.Size()
		if filepath.Ext(path) == ".json" {
			entries++
		}
		return nil
	})
	return bytes, entries, err
}

// ---------------------------------------------------------------------------
// Paths and file primitives

func shard(hash string) string {
	if len(hash) < 2 {
		return "xx"
	}
	return hash[:2]
}

func (s *Store) manifestPath(key string) string {
	return filepath.Join(s.root, "manifests", shard(key), key+".json")
}

func (s *Store) blobPath(hash string) string {
	return filepath.Join(s.root, "blobs", shard(hash), hash)
}

// readManifest loads and validates a key's manifest, deleting it on
// corruption. Swallowed failures other than plain absence count
// toward the Errors stat.
func (s *Store) readManifest(key string) (*manifest, bool) {
	path := s.manifestPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.errors.Add(1)
		}
		return nil, false
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil || !m.valid(key) {
		s.errors.Add(1)
		os.Remove(path)
		return nil, false
	}
	return &m, true
}

// readBlob loads a blob and verifies its content hash, deleting it on
// mismatch (truncation, garbage, partial write from a crashed
// non-atomic filesystem).
func (s *Store) readBlob(hash string) (string, bool) {
	path := s.blobPath(hash)
	data, err := os.ReadFile(path)
	if err != nil {
		s.errors.Add(1) // a referenced blob should exist and be readable
		return "", false
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != hash {
		s.errors.Add(1)
		os.Remove(path)
		return "", false
	}
	return string(data), true
}

// writeBlob stores content under its hash (idempotent: an existing
// blob of the same hash is left alone) and returns the hash.
func (s *Store) writeBlob(text string) (string, error) {
	sum := sha256.Sum256([]byte(text))
	hash := hex.EncodeToString(sum[:])
	path := s.blobPath(hash)
	if _, err := os.Stat(path); err == nil {
		return hash, nil
	}
	if err := s.writeFileAtomic(path, []byte(text)); err != nil {
		return "", err
	}
	return hash, nil
}

// writeFileAtomic writes via a temp file in the store's tmp/ dir and
// renames into place, so concurrent readers and crashed writers never
// expose partial content.
func (s *Store) writeFileAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Join(s.root, "tmp"), "w*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
