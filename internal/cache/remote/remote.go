// Package remote is the shared cache tier: an HTTP content-addressed
// protocol that lets many machines (a CI fleet, a team) share one
// build-artifact store, so a design compiled anywhere is a cache hit
// everywhere. It has two halves:
//
//   - Server wraps an ordinary on-disk cache.Store as an http.Handler
//     (the eclcached binary is a thin main around it);
//   - Client speaks the protocol and implements cache.Tier, so the
//     driver and pipeline slot it in as a third tier behind memory and
//     the local disk: memory → disk → remote → compile.
//
// # Protocol (v1 of the wire format)
//
// Everything is content-addressed, mirroring the store's on-disk
// schema — blobs by the SHA-256 of their bytes, manifests by build key:
//
//	GET/HEAD/PUT /v1/blobs/{sha256}      whole-design artifact bytes
//	GET/HEAD/PUT /v2/blobs/{sha256}      phase-snapshot bytes
//	GET/PUT      /v1/manifests/{key}     {"module":m,"artifacts":{name:sha256}}
//	GET/PUT      /v2/manifests/{key}     {"phase":p,"blobs":{name:sha256}}
//	GET          /healthz                liveness probe
//	GET          /statsz                 backing store's cache.Stats as JSON
//
// Blob PUTs are verified server-side (body hash must match the URL) and
// blob GETs are re-verified client-side, so neither a corrupt store nor
// a corrupting proxy can ever hand the build wrong artifact bytes — a
// bad body is indistinguishable from a miss. Manifest PUTs are rejected
// unless every referenced blob is already on the server, so a manifest
// can never dangle; the client uploads blobs first.
//
// # Failure model
//
// The remote tier is an optimization, never a dependency: every network
// failure, timeout, non-200, or hash mismatch on the read path degrades
// to a miss (counted in Stats.Errors), and the write path is an
// asynchronous, bounded, best-effort upload queue — a slow or dead
// server costs the build nothing but the configured timeout.
package remote

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
)

// EnvURL is the environment variable naming the default shared cache
// server (the eclc -remote-cache flag's default).
const EnvURL = "ECL_REMOTE_CACHE"

// DefaultTimeout bounds the small control requests (manifest GETs,
// blob HEADs). A hanging server reads as a miss after this long.
const DefaultTimeout = 5 * time.Second

// BlobTimeout bounds blob transfers (GET/PUT bodies), which scale with
// artifact size: a flat control-sized timeout would permanently
// exclude any blob too large for the link speed, silently disabling
// the tier for that design.
const BlobTimeout = 60 * time.Second

// uploadQueueDepth bounds the async upload backlog; beyond it, fresh
// uploads are dropped (best-effort) and counted in Stats.Dropped.
const uploadQueueDepth = 1024

// uploadWorkers is how many uploads run concurrently.
const uploadWorkers = 4

// maxBlobBytes bounds a single transferred blob (client reads and
// server writes); artifacts are source-scale text, so 256 MiB is far
// above anything legitimate.
const maxBlobBytes = 256 << 20

// Stats counts client traffic since Dial. Hits/Misses cover v1 design
// manifests, PhaseHits/PhaseMisses the v2 phase tier (mirroring
// cache.Stats); Uploads counts manifests successfully pushed, Dropped
// uploads discarded on a full queue, and Errors every degraded read or
// failed upload.
type Stats struct {
	Hits, Misses           int64
	PhaseHits, PhaseMisses int64
	Uploads, Dropped       int64
	Errors                 int64
}

// Client speaks the remote cache protocol against one server. It
// implements cache.Tier: reads are synchronous (bounded by the HTTP
// client's timeout, any failure is a miss), writes are queued and
// uploaded asynchronously by background workers. A Client is safe for
// concurrent use; Close (or Flush) drains pending uploads.
type Client struct {
	base   string
	hc     *http.Client // control requests: manifests, HEADs
	blobHC *http.Client // blob transfers (longer timeout)

	queue   chan uploadJob
	pending sync.WaitGroup // open upload jobs (for Flush)
	workers sync.WaitGroup // worker goroutines (for Close)

	mu     sync.Mutex
	closed bool

	hits, misses           atomic.Int64
	phaseHits, phaseMisses atomic.Int64
	uploads, dropped       atomic.Int64
	errors                 atomic.Int64
}

var _ cache.Tier = (*Client)(nil)

// uploadJob is one queued manifest upload (blobs travel with it).
type uploadJob struct {
	version int
	key     string
	owner   string            // module (v1) or phase (v2)
	blobs   map[string]string // name -> content
}

// Dial returns a client for the server at rawURL (http or https), with
// DefaultTimeout on control requests and BlobTimeout on blob
// transfers. Dialing does not contact the server: an unreachable
// server surfaces as misses, not as a Dial error.
func Dial(rawURL string) (*Client, error) {
	c, err := DialWith(rawURL, &http.Client{Timeout: DefaultTimeout})
	if err != nil {
		return nil, err
	}
	c.blobHC = &http.Client{Timeout: BlobTimeout}
	return c, nil
}

// DialWith is Dial with a caller-supplied http.Client (custom timeout,
// transport, or auth), used for every request including blob
// transfers.
func DialWith(rawURL string, hc *http.Client) (*Client, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("remote: bad cache URL %q: %w", rawURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("remote: cache URL %q must be http or https", rawURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("remote: cache URL %q has no host", rawURL)
	}
	c := &Client{
		base:   strings.TrimRight(u.String(), "/"),
		hc:     hc,
		blobHC: hc,
		queue:  make(chan uploadJob, uploadQueueDepth),
	}
	c.workers.Add(uploadWorkers)
	for i := 0; i < uploadWorkers; i++ {
		go c.uploadLoop()
	}
	return c, nil
}

// URL returns the server base URL the client was dialed with.
func (c *Client) URL() string { return c.base }

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		PhaseHits:   c.phaseHits.Load(),
		PhaseMisses: c.phaseMisses.Load(),
		Uploads:     c.uploads.Load(),
		Dropped:     c.dropped.Load(),
		Errors:      c.errors.Load(),
	}
}

// Flush blocks until every queued upload has been attempted (not
// necessarily succeeded — uploads stay best-effort).
func (c *Client) Flush() { c.pending.Wait() }

// Close flushes pending uploads and stops the workers. The client's
// read path keeps working after Close; further Puts are dropped.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.pending.Wait()
	close(c.queue)
	c.workers.Wait()
}

// ---------------------------------------------------------------------------
// Read path (synchronous; every failure is a miss)

// wireManifest is both manifest bodies on the wire: Module/Artifacts
// for v1, Phase/Blobs for v2.
type wireManifest struct {
	Module    string            `json:"module,omitempty"`
	Artifacts map[string]string `json:"artifacts,omitempty"`
	Phase     string            `json:"phase,omitempty"`
	Blobs     map[string]string `json:"blobs,omitempty"`
}

// Get fetches a design key's manifest and the wanted artifact blobs,
// hash-verifying each. Any failure — network, non-200, corrupt body —
// is a miss.
func (c *Client) Get(key string, want []string) (*cache.Entry, bool) {
	var m wireManifest
	if !c.getJSON(fmt.Sprintf("%s/v%d/manifests/%s", c.base, cache.SchemaVersion, url.PathEscape(key)), &m) || m.Module == "" {
		c.misses.Add(1)
		return nil, false
	}
	e := &cache.Entry{Module: m.Module, Artifacts: make(map[string]string, len(want))}
	for _, k := range want {
		hash, ok := m.Artifacts[k]
		if !ok {
			c.misses.Add(1)
			return nil, false
		}
		text, ok := c.getBlob(cache.SchemaVersion, hash)
		if !ok {
			c.misses.Add(1)
			return nil, false
		}
		e.Artifacts[k] = text
	}
	c.hits.Add(1)
	return e, true
}

// GetPhase fetches a phase key's manifest and the wanted snapshot
// blobs, with the same miss-on-any-failure discipline as Get.
func (c *Client) GetPhase(key string, want []string) (*cache.PhaseEntry, bool) {
	var m wireManifest
	if !c.getJSON(fmt.Sprintf("%s/v%d/manifests/%s", c.base, cache.PhaseSchemaVersion, url.PathEscape(key)), &m) || m.Phase == "" {
		c.phaseMisses.Add(1)
		return nil, false
	}
	e := &cache.PhaseEntry{Phase: m.Phase, Blobs: make(map[string]string, len(want))}
	for _, k := range want {
		hash, ok := m.Blobs[k]
		if !ok {
			c.phaseMisses.Add(1)
			return nil, false
		}
		text, ok := c.getBlob(cache.PhaseSchemaVersion, hash)
		if !ok {
			c.phaseMisses.Add(1)
			return nil, false
		}
		e.Blobs[k] = text
	}
	c.phaseHits.Add(1)
	return e, true
}

// getJSON fetches and decodes one manifest; false is a miss. A plain
// 404 is an expected miss; everything else counts an error too.
func (c *Client) getJSON(u string, out any) bool {
	resp, err := c.hc.Get(u)
	if err != nil {
		c.errors.Add(1)
		return false
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotFound {
		return false
	}
	if resp.StatusCode != http.StatusOK {
		c.errors.Add(1)
		return false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes))
	if err != nil {
		c.errors.Add(1)
		return false
	}
	if err := json.Unmarshal(body, out); err != nil {
		c.errors.Add(1)
		return false
	}
	return true
}

// getBlob fetches one blob and verifies its SHA-256 against the
// requested hash, so a corrupt server or path can never substitute
// wrong content — it reads as a miss.
func (c *Client) getBlob(version int, hash string) (string, bool) {
	resp, err := c.blobHC.Get(c.blobURL(version, hash))
	if err != nil {
		c.errors.Add(1)
		return "", false
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode != http.StatusNotFound {
			c.errors.Add(1)
		}
		return "", false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes))
	if err != nil {
		c.errors.Add(1)
		return "", false
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != hash {
		c.errors.Add(1)
		return "", false
	}
	return string(body), true
}

func (c *Client) blobURL(version int, hash string) string {
	return fmt.Sprintf("%s/v%d/blobs/%s", c.base, version, hash)
}

// drain discards and closes a response body so the underlying
// connection is reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxBlobBytes))
	resp.Body.Close()
}

// ---------------------------------------------------------------------------
// Write path (asynchronous, bounded, best-effort)

// Put queues the entry for upload and returns immediately; call Flush
// (or Close) to wait for the queue to drain. A full queue drops the
// upload. The returned error is always nil — uploads are best-effort
// by contract.
func (c *Client) Put(key string, e *cache.Entry) error {
	c.enqueue(uploadJob{version: cache.SchemaVersion, key: key, owner: e.Module, blobs: copyMap(e.Artifacts)})
	return nil
}

// PutPhase queues one phase snapshot for upload, like Put.
func (c *Client) PutPhase(key string, e *cache.PhaseEntry) error {
	c.enqueue(uploadJob{version: cache.PhaseSchemaVersion, key: key, owner: e.Phase, blobs: copyMap(e.Blobs)})
	return nil
}

func copyMap(m map[string]string) map[string]string {
	cp := make(map[string]string, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

func (c *Client) enqueue(job uploadJob) {
	if job.owner == "" || len(job.blobs) == 0 {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.dropped.Add(1)
		return
	}
	c.pending.Add(1)
	c.mu.Unlock()
	select {
	case c.queue <- job:
	default:
		c.pending.Done()
		c.dropped.Add(1)
		c.errors.Add(1)
	}
}

func (c *Client) uploadLoop() {
	defer c.workers.Done()
	for job := range c.queue {
		c.upload(job)
		c.pending.Done()
	}
}

// upload pushes one manifest and its blobs: HEAD each blob to skip
// content the server already has (the content-addressed win), PUT the
// missing ones, then PUT the manifest referencing them.
func (c *Client) upload(job uploadJob) {
	hashes := make(map[string]string, len(job.blobs))
	for name, text := range job.blobs {
		sum := sha256.Sum256([]byte(text))
		hash := hex.EncodeToString(sum[:])
		if !c.headOK(c.blobURL(job.version, hash)) {
			if !c.putBody(c.blobHC, c.blobURL(job.version, hash), "application/octet-stream", []byte(text)) {
				c.errors.Add(1)
				return
			}
		}
		hashes[name] = hash
	}
	var m wireManifest
	if job.version == cache.SchemaVersion {
		m = wireManifest{Module: job.owner, Artifacts: hashes}
	} else {
		m = wireManifest{Phase: job.owner, Blobs: hashes}
	}
	body, err := json.Marshal(m)
	if err != nil {
		c.errors.Add(1)
		return
	}
	if !c.putBody(c.hc, fmt.Sprintf("%s/v%d/manifests/%s", c.base, job.version, url.PathEscape(job.key)), "application/json", body) {
		c.errors.Add(1)
		return
	}
	c.uploads.Add(1)
}

func (c *Client) headOK(u string) bool {
	resp, err := c.hc.Head(u)
	if err != nil {
		return false
	}
	drain(resp)
	return resp.StatusCode == http.StatusOK
}

func (c *Client) putBody(hc *http.Client, u, contentType string, body []byte) bool {
	req, err := http.NewRequest(http.MethodPut, u, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := hc.Do(req)
	if err != nil {
		return false
	}
	drain(resp)
	return resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusNoContent
}
