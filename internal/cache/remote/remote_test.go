package remote

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
)

// startServer spins up a protocol server over a fresh on-disk store.
func startServer(t *testing.T) (*httptest.Server, *cache.Store) {
	t.Helper()
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(store))
	t.Cleanup(srv.Close)
	return srv, store
}

func dialT(t *testing.T, url string) *Client {
	t.Helper()
	c, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// key64 builds a valid 64-hex-char key from a short tag.
func key64(tag string) string {
	sum := sha256.Sum256([]byte(tag))
	return hex.EncodeToString(sum[:])
}

// TestRoundTripDesignEntry is the core contract: an entry uploaded by
// one client is served, byte-identical and hash-verified, to another
// client of the same server — the shared-tier story end to end.
func TestRoundTripDesignEntry(t *testing.T) {
	srv, _ := startServer(t)
	key := key64("design")
	entry := &cache.Entry{
		Module: "abro",
		Artifacts: map[string]string{
			"c":       "int tick(void) { return 1; }\n",
			"esterel": "module ABRO:\nend module\n",
		},
	}

	up := dialT(t, srv.URL)
	if err := up.Put(key, entry); err != nil {
		t.Fatal(err)
	}
	up.Flush()
	if st := up.Stats(); st.Uploads != 1 || st.Errors != 0 {
		t.Fatalf("uploader stats = %+v, want 1 upload, 0 errors", st)
	}

	down := dialT(t, srv.URL)
	got, ok := down.Get(key, []string{"c", "esterel"})
	if !ok {
		t.Fatal("fresh client missed an uploaded entry")
	}
	if got.Module != entry.Module {
		t.Fatalf("module = %q, want %q", got.Module, entry.Module)
	}
	for k, want := range entry.Artifacts {
		if got.Artifacts[k] != want {
			t.Fatalf("artifact %q = %q, want %q", k, got.Artifacts[k], want)
		}
	}
	if st := down.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("downloader stats = %+v, want 1 hit", st)
	}

	// A key the server never saw is a plain miss.
	if _, ok := down.Get(key64("never"), []string{"c"}); ok {
		t.Fatal("hit on an absent key")
	}
	// A wanted artifact the manifest lacks is a miss, not a partial hit.
	if _, ok := down.Get(key, []string{"c", "vhdl"}); ok {
		t.Fatal("hit despite a missing wanted artifact")
	}
}

// TestRoundTripPhaseEntry covers the v2 side: phase snapshots travel
// the same protocol under their own schema subtree.
func TestRoundTripPhaseEntry(t *testing.T) {
	srv, store := startServer(t)
	key := key64("phase")
	entry := &cache.PhaseEntry{Phase: "efsm", Blobs: map[string]string{"efsm": `{"states":3}`}}

	up := dialT(t, srv.URL)
	up.PutPhase(key, entry)
	up.Flush()

	down := dialT(t, srv.URL)
	got, ok := down.GetPhase(key, []string{"efsm"})
	if !ok {
		t.Fatal("fresh client missed an uploaded phase entry")
	}
	if got.Phase != "efsm" || got.Blobs["efsm"] != entry.Blobs["efsm"] {
		t.Fatalf("phase entry = %+v, want %+v", got, entry)
	}
	// The server's backing store is an ordinary cache.Store: the entry
	// is directly readable from it.
	if _, ok := store.GetPhase(key, []string{"efsm"}); !ok {
		t.Fatal("backing store cannot read the served phase entry")
	}
}

// TestUploadDedupesBlobs: re-uploading content the server already has
// skips the blob PUT (HEAD short-circuit) but still lands the second
// manifest.
func TestUploadDedupesBlobs(t *testing.T) {
	srv, store := startServer(t)
	c := dialT(t, srv.URL)
	shared := map[string]string{"c": "shared artifact body\n"}
	c.Put(key64("k1"), &cache.Entry{Module: "m1", Artifacts: shared})
	c.Put(key64("k2"), &cache.Entry{Module: "m2", Artifacts: shared})
	c.Flush()
	if st := c.Stats(); st.Uploads != 2 {
		t.Fatalf("uploads = %d, want 2", st.Uploads)
	}
	if _, ok := store.Get(key64("k1"), []string{"c"}); !ok {
		t.Fatal("k1 not on server")
	}
	if _, ok := store.Get(key64("k2"), []string{"c"}); !ok {
		t.Fatal("k2 not on server")
	}
}

// TestServerRejectsLyingBlobPut: a body that does not hash to its URL
// must be refused, so one bad client cannot poison the shared store.
func TestServerRejectsLyingBlobPut(t *testing.T) {
	srv, store := startServer(t)
	hash := key64("claimed-content")
	req, _ := http.NewRequest(http.MethodPut, fmt.Sprintf("%s/v1/blobs/%s", srv.URL, hash), strings.NewReader("other content"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("lying blob PUT got %d, want 400", resp.StatusCode)
	}
	if store.HasBlob(cache.SchemaVersion, hash) {
		t.Fatal("server stored a blob whose content does not match its hash")
	}
}

// TestServerRejectsDanglingManifest: a manifest referencing a blob the
// server does not hold must be refused.
func TestServerRejectsDanglingManifest(t *testing.T) {
	srv, _ := startServer(t)
	body := fmt.Sprintf(`{"module":"m","artifacts":{"c":"%s"}}`, key64("not-uploaded"))
	req, _ := http.NewRequest(http.MethodPut, fmt.Sprintf("%s/v1/manifests/%s", srv.URL, key64("k")), strings.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dangling manifest PUT got %d, want 400", resp.StatusCode)
	}
}

// TestServerRejectsTraversalIDs: keys and hashes are hex-only, so path
// metacharacters can never reach the store's filesystem layout.
func TestServerRejectsTraversalIDs(t *testing.T) {
	srv, _ := startServer(t)
	for _, path := range []string{
		"/v1/blobs/..%2f..%2fetc", "/v1/manifests/..%2fx", "/v3/blobs/" + key64("x"), "/v1/blobs/UPPER",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("GET %s unexpectedly succeeded", path)
		}
	}
}

// ---------------------------------------------------------------------------
// Fault injection: a hostile or broken server must only ever cost a
// miss — corrupt blobs, 500s, and hangs all degrade, never surface
// wrong artifacts or an error.

// faultClient dials a handler-backed server with a tight timeout so
// hang tests stay fast.
func faultClient(t *testing.T, h http.Handler) *Client {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	c, err := DialWith(srv.URL, &http.Client{Timeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// assertMiss drives both read paths and fails on anything but a miss.
func assertMiss(t *testing.T, c *Client, scenario string) {
	t.Helper()
	if e, ok := c.Get(key64("k"), []string{"c"}); ok {
		t.Fatalf("%s: Get returned a hit: %+v", scenario, e)
	}
	if e, ok := c.GetPhase(key64("k"), []string{"efsm"}); ok {
		t.Fatalf("%s: GetPhase returned a hit: %+v", scenario, e)
	}
	st := c.Stats()
	if st.Misses != 1 || st.PhaseMisses != 1 {
		t.Fatalf("%s: stats = %+v, want exactly one miss per tier", scenario, st)
	}
}

func TestFaultCorruptBlobsReadAsMisses(t *testing.T) {
	// The server serves valid manifests whose blobs come back as
	// garbage that does not match their hash — the wrong-artifact
	// attack. The client must verify and miss.
	goodHash := key64("good")
	c := faultClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.Contains(r.URL.Path, "/manifests/"):
			if strings.HasPrefix(r.URL.Path, "/v1/") {
				fmt.Fprintf(w, `{"module":"m","artifacts":{"c":"%s"}}`, goodHash)
			} else {
				fmt.Fprintf(w, `{"phase":"efsm","blobs":{"efsm":"%s"}}`, goodHash)
			}
		case strings.Contains(r.URL.Path, "/blobs/"):
			fmt.Fprint(w, "CORRUPTED GARBAGE, NOT THE CONTENT")
		}
	}))
	assertMiss(t, c, "corrupt blob")
	if c.Stats().Errors == 0 {
		t.Fatal("corruption left no trace in the error counter")
	}
}

func TestFault500sReadAsMisses(t *testing.T) {
	c := faultClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "internal meltdown", http.StatusInternalServerError)
	}))
	assertMiss(t, c, "500s")
}

func TestFaultHangsReadAsMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping timeout test")
	}
	release := make(chan struct{})
	defer close(release)
	c := faultClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hang until the test tears down
	}))
	start := time.Now()
	assertMiss(t, c, "hanging server")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hanging server stalled reads for %v; must time out to a miss", elapsed)
	}
}

func TestFaultCorruptManifestJSONReadsAsMiss(t *testing.T) {
	c := faultClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"module": truncated garbage`)
	}))
	assertMiss(t, c, "corrupt manifest JSON")
}

func TestFaultDeadServerUploadsAreBestEffort(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // nothing listens anymore
	c, err := DialWith(url, &http.Client{Timeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(key64("k"), &cache.Entry{Module: "m", Artifacts: map[string]string{"c": "x"}}); err != nil {
		t.Fatalf("Put against a dead server must stay best-effort, got %v", err)
	}
	c.Flush()
	if st := c.Stats(); st.Uploads != 0 || st.Errors == 0 {
		t.Fatalf("dead-server stats = %+v, want 0 uploads and recorded errors", st)
	}
}

func TestDialRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "ftp://host/x", "http://", ":::"} {
		if _, err := Dial(bad); err == nil {
			t.Fatalf("Dial(%q) succeeded, want error", bad)
		}
	}
}

// TestStatszCountsProtocolTraffic: /statsz must reflect what the fleet
// actually did — served manifests/blobs and accepted uploads — not sit
// at zero (the store's own counters don't see the raw-accessor path).
func TestStatszCountsProtocolTraffic(t *testing.T) {
	srv, _ := startServer(t)
	key := key64("traffic")
	c := dialT(t, srv.URL)
	c.Put(key, &cache.Entry{Module: "m", Artifacts: map[string]string{"c": "body"}})
	c.Flush()
	if _, ok := c.Get(key, []string{"c"}); !ok {
		t.Fatal("round trip failed")
	}

	resp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ManifestPuts != 1 || st.BlobPuts != 1 {
		t.Fatalf("statsz puts = %+v, want 1 manifest + 1 blob", st)
	}
	if st.ManifestHits != 1 || st.BlobHits != 1 {
		t.Fatalf("statsz hits = %+v, want 1 manifest + 1 blob", st)
	}
	if st.StoreEntries == 0 || st.StoreBytes == 0 {
		t.Fatalf("statsz store footprint empty: %+v", st)
	}
}
