package remote

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/httpjson"
)

// Server serves the remote cache protocol over an ordinary on-disk
// cache.Store — the eclcached binary is a thin main around it. The
// store's own discipline (atomic renames, hash-verified reads, corrupt
// entries repaired as misses) carries over unchanged, so a server
// crash or concurrent writers never corrupt what clients read.
type Server struct {
	store *cache.Store
	mux   *http.ServeMux

	// Protocol-level traffic counters: the handlers read the store
	// through its raw accessors, which bypass Store.Get/GetPhase's own
	// hit/miss counting, so the server keeps the fleet-facing tallies
	// itself.
	manifestGets, manifestHits atomic.Int64
	blobGets, blobHits         atomic.Int64
	manifestPuts, blobPuts     atomic.Int64
}

// ServerStats is the /statsz payload: how the fleet is using this
// server. Hits count requests answered 200; the gap to Gets is misses.
type ServerStats struct {
	ManifestGets, ManifestHits int64
	BlobGets, BlobHits         int64
	ManifestPuts, BlobPuts     int64
	StoreBytes                 int64
	StoreEntries               int
}

// NewServer returns an http.Handler serving the protocol over store.
func NewServer(store *cache.Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		st := ServerStats{
			ManifestGets: s.manifestGets.Load(), ManifestHits: s.manifestHits.Load(),
			BlobGets: s.blobGets.Load(), BlobHits: s.blobHits.Load(),
			ManifestPuts: s.manifestPuts.Load(), BlobPuts: s.blobPuts.Load(),
		}
		st.StoreBytes, st.StoreEntries, _ = store.Size()
		httpjson.Write(w, http.StatusOK, st)
	})
	s.mux.HandleFunc("GET /{version}/blobs/{hash}", s.blobGet)
	s.mux.HandleFunc("HEAD /{version}/blobs/{hash}", s.blobHead)
	s.mux.HandleFunc("PUT /{version}/blobs/{hash}", s.blobPut)
	s.mux.HandleFunc("GET /{version}/manifests/{key}", s.manifestGet)
	s.mux.HandleFunc("PUT /{version}/manifests/{key}", s.manifestPut)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// version parses the {version} path segment ("v1"/"v2") into a store
// schema version; 0 means unknown.
func version(r *http.Request) int {
	seg := r.PathValue("version")
	if len(seg) < 2 || seg[0] != 'v' {
		return 0
	}
	n, err := strconv.Atoi(seg[1:])
	if err != nil || (n != cache.SchemaVersion && n != cache.PhaseSchemaVersion) {
		return 0
	}
	return n
}

// validID accepts the hex content hashes and build keys the compiler
// produces — and nothing that could traverse the store's paths.
func validID(id string) bool {
	if len(id) < 4 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// blobArgs validates the shared blob-route inputs, writing the error
// response itself when they are bad.
func blobArgs(w http.ResponseWriter, r *http.Request) (v int, hash string, ok bool) {
	v = version(r)
	hash = r.PathValue("hash")
	if v == 0 || !validID(hash) {
		http.Error(w, "bad schema version or blob hash", http.StatusBadRequest)
		return 0, "", false
	}
	return v, hash, true
}

func (s *Server) blobHead(w http.ResponseWriter, r *http.Request) {
	v, hash, ok := blobArgs(w, r)
	if !ok {
		return
	}
	if !s.store.HasBlob(v, hash) {
		http.Error(w, "no such blob", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *Server) blobGet(w http.ResponseWriter, r *http.Request) {
	v, hash, ok := blobArgs(w, r)
	if !ok {
		return
	}
	s.blobGets.Add(1)
	text, ok := s.store.ReadBlob(v, hash)
	if !ok {
		http.Error(w, "no such blob", http.StatusNotFound)
		return
	}
	s.blobHits.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	io.WriteString(w, text)
}

func (s *Server) blobPut(w http.ResponseWriter, r *http.Request) {
	v, hash, ok := blobArgs(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
	if err != nil {
		http.Error(w, "unreadable body", http.StatusBadRequest)
		return
	}
	// Verify before storing: the blob's name IS its content hash, and a
	// mismatch means a buggy or malicious client.
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != hash {
		http.Error(w, "body does not hash to the requested name", http.StatusBadRequest)
		return
	}
	if _, err := s.store.WriteBlob(v, string(body)); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.blobPuts.Add(1)
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) manifestGet(w http.ResponseWriter, r *http.Request) {
	v := version(r)
	key := r.PathValue("key")
	if v == 0 || !validID(key) {
		http.Error(w, "bad schema version or key", http.StatusBadRequest)
		return
	}
	s.manifestGets.Add(1)
	var m wireManifest
	switch v {
	case cache.SchemaVersion:
		module, artifacts, ok := s.store.Manifest(key)
		if !ok {
			http.Error(w, "no such manifest", http.StatusNotFound)
			return
		}
		m = wireManifest{Module: module, Artifacts: artifacts}
	case cache.PhaseSchemaVersion:
		phase, blobs, ok := s.store.PhaseManifest(key)
		if !ok {
			http.Error(w, "no such manifest", http.StatusNotFound)
			return
		}
		m = wireManifest{Phase: phase, Blobs: blobs}
	}
	s.manifestHits.Add(1)
	httpjson.Write(w, http.StatusOK, m)
}

func (s *Server) manifestPut(w http.ResponseWriter, r *http.Request) {
	v := version(r)
	key := r.PathValue("key")
	if v == 0 || !validID(key) {
		http.Error(w, "bad schema version or key", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
	if err != nil {
		http.Error(w, "unreadable body", http.StatusBadRequest)
		return
	}
	var m wireManifest
	if err := json.Unmarshal(body, &m); err != nil {
		http.Error(w, "bad manifest JSON", http.StatusBadRequest)
		return
	}
	owner, hashes := m.Module, m.Artifacts
	if v == cache.PhaseSchemaVersion {
		owner, hashes = m.Phase, m.Blobs
	}
	if owner == "" || len(hashes) == 0 {
		http.Error(w, "empty manifest", http.StatusBadRequest)
		return
	}
	// A manifest may only reference blobs the server already holds —
	// clients upload blobs first — so no reader can ever chase a
	// dangling hash.
	for name, hash := range hashes {
		if !validID(hash) {
			http.Error(w, fmt.Sprintf("bad blob hash for %q", name), http.StatusBadRequest)
			return
		}
		if !s.store.HasBlob(v, hash) {
			http.Error(w, fmt.Sprintf("blob %s for %q not uploaded", hash, name), http.StatusBadRequest)
			return
		}
	}
	if v == cache.SchemaVersion {
		err = s.store.MergeManifest(key, owner, hashes)
	} else {
		err = s.store.PutPhaseManifest(key, owner, hashes)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.manifestPuts.Add(1)
	w.WriteHeader(http.StatusCreated)
}
