package httpjson

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestStream(t *testing.T) {
	rec := httptest.NewRecorder()
	st := NewStream(rec, "test stream")
	for i := 0; i < 3; i++ {
		if !st.Encode(map[string]int{"n": i}) {
			t.Fatalf("Encode %d failed: %v", i, st.Err())
		}
	}
	st.Flush()
	if err := st.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %q", len(lines), rec.Body.String())
	}
	for i, line := range lines {
		want := fmt.Sprintf(`{"n":%d}`, i)
		if line != want {
			t.Errorf("line %d = %q, want %q", i, line, want)
		}
	}
}

// brokenWriter fails every body write, like a client that hung up.
type brokenWriter struct{ h http.Header }

func (w *brokenWriter) Header() http.Header        { return w.h }
func (w *brokenWriter) Write([]byte) (int, error)  { return 0, errors.New("peer gone") }
func (w *brokenWriter) WriteHeader(statusCode int) {}

func TestStreamDeadAfterFailure(t *testing.T) {
	var logged []string
	defer func(orig func(string, ...any)) { Logf = orig }(Logf)
	Logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}

	st := NewStream(&brokenWriter{h: make(http.Header)}, "dead stream")
	// The bufio layer absorbs small writes, so force the failure out
	// with Flush, then check the stream stays dead.
	st.Encode("hello")
	st.Flush()
	if st.Err() == nil {
		t.Fatal("flush against a broken writer reported no error")
	}
	if st.Encode("more") {
		t.Fatal("Encode succeeded on a dead stream")
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "dead stream") {
		t.Fatalf("logged = %q, want one message naming the stream", logged)
	}
}
