// Package httpjson is the one JSON response helper the repo's HTTP
// servers (eclcached's cache protocol, eclsimd's execution API) share:
// it sets the Content-Type header before the status is written and
// logs encode failures instead of silently dropping them — an encode
// error after the header has gone out cannot be reported to the
// client, so the server log is the only place it can surface.
package httpjson

import (
	"encoding/json"
	"log"
	"net/http"
)

// Logf is the destination for encode-failure reports; tests may
// replace it. The default is the standard logger.
var Logf = log.Printf

// Write responds with v encoded as JSON under the given status. The
// Content-Type header is set before the status line is committed.
// Encode failures (marshal errors, a client that hung up mid-body) are
// logged, not returned: by then the status is already on the wire.
func Write(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		Logf("httpjson: encode %T response: %v", v, err)
	}
}
