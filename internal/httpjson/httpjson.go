// Package httpjson is the one JSON response helper the repo's HTTP
// servers (eclcached's cache protocol, eclsimd's execution API) share:
// it sets the Content-Type header before the status is written and
// logs encode failures instead of silently dropping them — an encode
// error after the header has gone out cannot be reported to the
// client, so the server log is the only place it can surface.
package httpjson

import (
	"bufio"
	"encoding/json"
	"log"
	"net/http"
)

// Logf is the destination for encode-failure reports; tests may
// replace it. The default is the standard logger.
var Logf = log.Printf

// Write responds with v encoded as JSON under the given status. The
// Content-Type header is set before the status line is committed.
// Encode failures (marshal errors, a client that hung up mid-body) are
// logged, not returned: by then the status is already on the wire.
func Write(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		Logf("httpjson: encode %T response: %v", v, err)
	}
}

// Stream writes an NDJSON response body: one JSON value per line,
// buffered, with the application/x-ndjson Content-Type set before the
// first byte is committed. Like Write, encode failures mid-stream
// cannot reach the client (the 200 status is already on the wire), so
// they are logged — tagged with the caller-supplied context — and the
// stream goes dead: every later Encode is a no-op reporting false.
type Stream struct {
	what string
	bw   *bufio.Writer
	enc  *json.Encoder
	err  error
}

// NewStream starts an NDJSON response on w; what names the response in
// encode-failure logs (e.g. "step abro-1").
func NewStream(w http.ResponseWriter, what string) *Stream {
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	return &Stream{what: what, bw: bw, enc: json.NewEncoder(bw)}
}

// Encode appends one value as a JSON line, reporting false (after
// logging) on the first failure and on every call after it.
func (s *Stream) Encode(v any) bool {
	if s.err != nil {
		return false
	}
	if err := s.enc.Encode(v); err != nil {
		s.err = err
		Logf("httpjson: %s: encode %T line: %v", s.what, v, err)
		return false
	}
	return true
}

// Flush drains the buffer to the client; a flush failure is logged and
// kills the stream like an encode failure. Call it once after the last
// Encode.
func (s *Stream) Flush() {
	if s.err != nil {
		return
	}
	if err := s.bw.Flush(); err != nil {
		s.err = err
		Logf("httpjson: %s: flush response: %v", s.what, err)
	}
}

// Err returns the first encode or flush failure, nil while the stream
// is healthy.
func (s *Stream) Err() error { return s.err }
