// Package cost estimates implementation metrics for a MIPS R3000-class
// target — the processor the paper's Table 1 reports. It prices a
// compiled EFSM as a software image (code and data bytes) and scales
// dynamic execution work into clock cycles; it also models the memory
// footprint and per-operation cycle costs of the small real-time
// kernel used by the asynchronous (multi-task) partitions.
//
// All constants live in Model, with the rationale documented next to
// each. The absolute values are calibrated to 1999-era POLIS-style
// synthesis (fixed-point, no cache modeling); the experiments depend
// only on their relative magnitudes.
package cost

import (
	"repro/internal/ast"
	"repro/internal/efsm"
	"repro/internal/kernel"
	"repro/internal/sem"
)

// Model holds every target constant. The zero value is unusable; call
// Default.
type Model struct {
	// --- software image (bytes) ---

	// FuncPrologue prices a function's entry/exit (save/restore ra,
	// stack adjust): 4 instructions.
	FuncPrologue int
	// StateDispatch prices one jump-table entry plus the indexed jump
	// amortized per state.
	StateDispatch int
	// BranchBytes prices a presence test (load flag + branch): 3
	// instructions.
	BranchBytes int
	// ActionBytes prices a pure emit (set flag + record): 2
	// instructions.
	ActionBytes int
	// LeafBytes prices the state update and return jump.
	LeafBytes int
	// ExprOpBytes prices one C operator or operand access (MIPS is a
	// load/store ISA: roughly one instruction per operand, one per op).
	ExprOpBytes int
	// StmtOverheadBytes prices statement glue (branches of if/loops).
	StmtOverheadBytes int
	// CallBytes prices a function call sequence (args + jal + result).
	CallBytes int
	// CopyBytesPerWord prices aggregate copies (lw/sw pair per word).
	CopyBytesPerWord int

	// --- data segment (bytes) ---

	// StateVarBytes is the control-state variable.
	StateVarBytes int
	// PresenceFlagBytes per signal.
	PresenceFlagBytes int
	// TaskStackBytes is the stack reserved per task image.
	TaskStackBytes int

	// --- reaction cycles ---

	// ReactionEntry prices dispatch into the state switch.
	ReactionEntry int
	// NodeCycles prices one decision-tree node visit.
	NodeCycles int
	// UnitCycles scales dataexec work units (≈1 instruction each).
	UnitCycles int

	// --- RTOS (the paper's async partitions run under a small kernel) ---

	// RTOSBaseCode is the resident kernel: scheduler, context switch,
	// event flags, mailboxes, startup.
	RTOSBaseCode int
	// RTOSPerTaskCode prices a task wrapper (entry stub, latch copies).
	RTOSPerTaskCode int
	// RTOSPerChannelCode prices one signal channel's post/fetch stubs.
	RTOSPerChannelCode int
	// RTOSValuedChannelCode adds value-copy code per valued channel.
	RTOSValuedChannelCode int
	// RTOSBaseData is kernel tables (ready queue, current, tick).
	RTOSBaseData int
	// RTOSPerTaskData is a TCB.
	RTOSPerTaskData int
	// RTOSPerChannelData is an event/mailbox control block.
	RTOSPerChannelData int

	// ContextSwitch prices a full register save/restore on R3000.
	ContextSwitch int
	// EventPost prices posting one event to one subscriber.
	EventPost int
	// SchedulerPass prices one ready-queue scan.
	SchedulerPass int
	// TaskDispatch prices entering a task's reaction from the kernel.
	TaskDispatch int
	// IdleTick prices the kernel's per-tick housekeeping.
	IdleTick int
}

// Default returns the calibrated R3000 model.
func Default() *Model {
	return &Model{
		FuncPrologue:      16,
		StateDispatch:     8,
		BranchBytes:       12,
		ActionBytes:       8,
		LeafBytes:         8,
		ExprOpBytes:       6,
		StmtOverheadBytes: 8,
		CallBytes:         16,
		CopyBytesPerWord:  8,

		StateVarBytes:     4,
		PresenceFlagBytes: 1,
		TaskStackBytes:    256,

		ReactionEntry: 8,
		NodeCycles:    2,
		UnitCycles:    1,

		RTOSBaseCode:          4096,
		RTOSPerTaskCode:       224,
		RTOSPerChannelCode:    96,
		RTOSValuedChannelCode: 64,
		RTOSBaseData:          512,
		RTOSPerTaskData:       96,
		RTOSPerChannelData:    24,

		ContextSwitch: 85,
		EventPost:     42,
		SchedulerPass: 28,
		TaskDispatch:  25,
		IdleTick:      12,
	}
}

// Image is a software footprint.
type Image struct {
	CodeBytes int
	DataBytes int
}

// Add accumulates another image.
func (im *Image) Add(o Image) {
	im.CodeBytes += o.CodeBytes
	im.DataBytes += o.DataBytes
}

// SoftwareImage prices one compiled EFSM as an R3000 software image:
// the reaction function generated from the decision trees, the
// extracted data functions, referenced user C functions, and the data
// segment (variables, signal slots, control state).
func (m *Model) SoftwareImage(e *efsm.Machine) Image {
	var im Image
	im.CodeBytes += m.FuncPrologue
	st := e.CollectStats()
	im.CodeBytes += st.States * m.StateDispatch

	for _, s := range e.States {
		im.CodeBytes += m.treeBytes(e, s.Root)
	}
	for _, f := range e.Mod.Funcs {
		im.CodeBytes += m.FuncPrologue
		for _, stm := range f.Body {
			im.CodeBytes += m.stmtBytes(e.Info, stm)
		}
	}
	seen := map[*sem.FuncInfo]bool{}
	for _, fi := range e.Info.Funcs {
		if fi.Decl.Body == nil || seen[fi] {
			continue
		}
		seen[fi] = true
		im.CodeBytes += m.FuncPrologue
		for _, stm := range fi.Decl.Body.Stmts {
			im.CodeBytes += m.stmtBytes(e.Info, stm)
		}
	}

	im.DataBytes += m.StateVarBytes
	for _, v := range e.Mod.Vars {
		im.DataBytes += align4(v.Type.Size())
	}
	for _, s := range e.Mod.Signals() {
		im.DataBytes += m.PresenceFlagBytes
		if !s.Pure && s.Type != nil {
			im.DataBytes += align4(s.Type.Size())
		}
	}
	im.DataBytes = align4(im.DataBytes)
	return im
}

func align4(n int) int { return (n + 3) / 4 * 4 }

func (m *Model) treeBytes(e *efsm.Machine, n efsm.Node) int {
	switch n := n.(type) {
	case nil:
		return 0
	case *efsm.Leaf:
		return m.LeafBytes
	case *efsm.ActNode:
		return m.actionBytes(e, n.Act) + m.treeBytes(e, n.Next)
	case *efsm.InputBranch:
		return m.BranchBytes + m.treeBytes(e, n.Then) + m.treeBytes(e, n.Else)
	case *efsm.DataBranch:
		return m.BranchBytes + m.exprBytes(e.Info, n.Expr.E) + m.treeBytes(e, n.Then) + m.treeBytes(e, n.Else)
	}
	return 0
}

func (m *Model) actionBytes(e *efsm.Machine, a efsm.Action) int {
	switch a.Kind {
	case efsm.ActEmit:
		bytes := m.ActionBytes
		if a.Value != nil {
			bytes += m.exprBytes(e.Info, a.Value.E)
			if a.Sig.Type != nil {
				bytes += m.copyBytes(a.Sig.Type.Size())
			}
		}
		return bytes
	case efsm.ActAssign:
		return m.exprBytes(e.Info, a.LHS.E) + m.exprBytes(e.Info, a.RHS.E) + m.ExprOpBytes
	case efsm.ActEval:
		return m.exprBytes(e.Info, a.X.E)
	case efsm.ActCall:
		return m.CallBytes
	}
	return 0
}

func (m *Model) copyBytes(size int) int {
	words := (size + 3) / 4
	if words > 8 {
		// Large copies call memcpy instead of inlining.
		return m.CallBytes
	}
	return words * m.CopyBytesPerWord
}

// exprBytes estimates instruction bytes for evaluating an expression.
func (m *Model) exprBytes(info *sem.Info, e ast.Expr) int {
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		return m.ExprOpBytes
	case *ast.BasicLit:
		return m.ExprOpBytes / 2
	case *ast.Paren:
		return m.exprBytes(info, e.X)
	case *ast.Unary:
		return m.ExprOpBytes + m.exprBytes(info, e.X)
	case *ast.Postfix:
		return m.ExprOpBytes + m.exprBytes(info, e.X)
	case *ast.Binary:
		return m.ExprOpBytes + m.exprBytes(info, e.X) + m.exprBytes(info, e.Y)
	case *ast.Assign:
		return m.ExprOpBytes + m.exprBytes(info, e.LHS) + m.exprBytes(info, e.RHS)
	case *ast.Cond:
		return 2*m.ExprOpBytes + m.exprBytes(info, e.CondX) + m.exprBytes(info, e.Then) + m.exprBytes(info, e.Else)
	case *ast.Call:
		bytes := m.CallBytes
		for _, a := range e.Args {
			bytes += m.exprBytes(info, a)
		}
		return bytes
	case *ast.Index:
		return m.ExprOpBytes + m.exprBytes(info, e.X) + m.exprBytes(info, e.Sub)
	case *ast.Member:
		return m.ExprOpBytes/2 + m.exprBytes(info, e.X)
	case *ast.Cast:
		return m.ExprOpBytes + m.exprBytes(info, e.X)
	case *ast.SizeofExpr:
		return m.ExprOpBytes / 2
	}
	return m.ExprOpBytes
}

// stmtBytes estimates instruction bytes for a data statement.
func (m *Model) stmtBytes(info *sem.Info, s ast.Stmt) int {
	switch s := s.(type) {
	case nil, *ast.Empty:
		return 0
	case *ast.Block:
		total := 0
		for _, st := range s.Stmts {
			total += m.stmtBytes(info, st)
		}
		return total
	case *ast.VarDecl:
		if s.Init != nil {
			return m.ExprOpBytes + m.exprBytes(info, s.Init)
		}
		return 0
	case *ast.ExprStmt:
		return m.exprBytes(info, s.X)
	case *ast.If:
		return m.StmtOverheadBytes + m.exprBytes(info, s.Cond) + m.stmtBytes(info, s.Then) + m.stmtBytes(info, s.Else)
	case *ast.While:
		return m.StmtOverheadBytes + m.exprBytes(info, s.Cond) + m.stmtBytes(info, s.Body)
	case *ast.DoWhile:
		return m.StmtOverheadBytes + m.exprBytes(info, s.Cond) + m.stmtBytes(info, s.Body)
	case *ast.For:
		return m.StmtOverheadBytes + m.stmtBytes(info, s.Init) + m.exprBytes(info, s.Cond) + m.stmtBytes(info, s.Post) + m.stmtBytes(info, s.Body)
	case *ast.Switch:
		total := m.StmtOverheadBytes + m.exprBytes(info, s.Tag)
		for _, c := range s.Cases {
			total += m.StmtOverheadBytes / 2
			for _, st := range c.Body {
				total += m.stmtBytes(info, st)
			}
		}
		return total
	case *ast.Break, *ast.Continue:
		return 4
	case *ast.Return:
		if s.X != nil {
			return 4 + m.exprBytes(info, s.X)
		}
		return 4
	}
	return m.StmtOverheadBytes
}

// ReactionCycles converts one EFSM step's dynamic counts to cycles.
func (m *Model) ReactionCycles(depth, units int) int {
	return m.ReactionEntry + m.NodeCycles*depth + m.UnitCycles*units
}

// RTOSImage models the kernel's memory footprint for a partition with
// the given number of tasks and channels.
func (m *Model) RTOSImage(tasks, channels, valuedChannels int) Image {
	return Image{
		CodeBytes: m.RTOSBaseCode + tasks*m.RTOSPerTaskCode +
			channels*m.RTOSPerChannelCode + valuedChannels*m.RTOSValuedChannelCode,
		DataBytes: m.RTOSBaseData + tasks*m.RTOSPerTaskData + channels*m.RTOSPerChannelData,
	}
}

// TaskDataBytes adds the per-task stack to a task's image.
func (m *Model) TaskDataBytes() int { return m.TaskStackBytes }

// ChannelsOf counts the signal channels of a kernel module (its
// interface signals), splitting out valued ones.
func ChannelsOf(mod *kernel.Module) (channels, valued int) {
	for _, s := range mod.Signals() {
		channels++
		if !s.Pure && s.Type != nil {
			valued++
		}
	}
	return channels, valued
}
