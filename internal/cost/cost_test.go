package cost

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/efsm"
	"repro/internal/lower"
	"repro/internal/paperex"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/sem"
	"repro/internal/source"
)

func buildEFSM(t *testing.T, src, modName string, pol lower.Policy) *efsm.Machine {
	t.Helper()
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("test.ecl", src))
	f := parser.ParseFile(expanded, &diags)
	info := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front end: %s", diags.String())
	}
	res, err := lower.Lower(info, modName, pol, &diags)
	if err != nil {
		t.Fatal(err)
	}
	m, err := compile.Compile(res)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSoftwareImagePositive(t *testing.T) {
	model := Default()
	m := buildEFSM(t, paperex.Stack, "toplevel", lower.MaximalReactive)
	im := model.SoftwareImage(m)
	if im.CodeBytes <= 0 || im.DataBytes <= 0 {
		t.Fatalf("image: %+v", im)
	}
	// Data must cover assemble's packet buffer (64B union) plus the
	// shared packet signal slot (another 64B after inlining).
	if im.DataBytes < 2*64 {
		t.Errorf("data bytes %d too small for the packet buffers", im.DataBytes)
	}
}

func TestImageGrowsWithStates(t *testing.T) {
	model := Default()
	small := buildEFSM(t, paperex.ABRO, "abro", lower.MaximalReactive)
	big := buildEFSM(t, paperex.Buffer, "bufferctl", lower.MaximalReactive)
	if model.SoftwareImage(big).CodeBytes <= model.SoftwareImage(small).CodeBytes {
		t.Error("bigger machine must cost more code")
	}
}

func TestPolicyAffectsImage(t *testing.T) {
	model := Default()
	max := buildEFSM(t, paperex.Buffer, "levelmon", lower.MaximalReactive)
	min := buildEFSM(t, paperex.Buffer, "levelmon", lower.MinimalReactive)
	if model.SoftwareImage(min).CodeBytes >= model.SoftwareImage(max).CodeBytes {
		t.Errorf("minimal policy should shrink code: max=%d min=%d",
			model.SoftwareImage(max).CodeBytes, model.SoftwareImage(min).CodeBytes)
	}
}

func TestRTOSImageGrowsWithTasks(t *testing.T) {
	model := Default()
	one := model.RTOSImage(1, 5, 2)
	three := model.RTOSImage(3, 8, 3)
	if three.CodeBytes <= one.CodeBytes || three.DataBytes <= one.DataBytes {
		t.Errorf("RTOS image must grow with tasks: %+v vs %+v", one, three)
	}
}

func TestReactionCycles(t *testing.T) {
	model := Default()
	base := model.ReactionCycles(0, 0)
	deep := model.ReactionCycles(10, 100)
	if deep <= base {
		t.Error("cycles must grow with work")
	}
	if got := model.ReactionCycles(1, 1); got != model.ReactionEntry+model.NodeCycles+model.UnitCycles {
		t.Errorf("cycles formula wrong: %d", got)
	}
}

func TestChannelsOf(t *testing.T) {
	m := buildEFSM(t, paperex.Stack, "toplevel", lower.MaximalReactive)
	ch, valued := ChannelsOf(m.Mod)
	// reset, in_byte, addr_match, packet, crc_ok (+ locals from inlining).
	if ch < 5 {
		t.Errorf("channels = %d, want >= 5", ch)
	}
	if valued < 2 {
		t.Errorf("valued = %d, want >= 2 (in_byte, packet, crc_ok)", valued)
	}
}

func TestAlign4(t *testing.T) {
	for in, want := range map[int]int{0: 0, 1: 4, 4: 4, 5: 8, 64: 64} {
		if got := align4(in); got != want {
			t.Errorf("align4(%d) = %d, want %d", in, got, want)
		}
	}
}
