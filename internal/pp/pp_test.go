package pp

import (
	"strings"
	"testing"

	"repro/internal/source"
)

func expand(t *testing.T, src string, files map[string]string) (string, *source.DiagList) {
	t.Helper()
	var diags source.DiagList
	var r Resolver
	if files != nil {
		r = MapResolver(files)
	}
	p := New(&diags, r)
	out := p.Expand(source.NewFile("main.ecl", src))
	return out.Content, &diags
}

func TestDefineSimple(t *testing.T) {
	out, diags := expand(t, "#define N 10\nint x = N;", nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %s", diags)
	}
	if !strings.Contains(out, "int x = 10;") {
		t.Errorf("output %q", out)
	}
}

func TestDefineChained(t *testing.T) {
	src := `#define HDRSIZE 6
#define DATASIZE 56
#define CRCSIZE 2
#define PKTSIZE HDRSIZE+DATASIZE+CRCSIZE
int n = PKTSIZE;`
	out, diags := expand(t, src, nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %s", diags)
	}
	if !strings.Contains(out, "int n = 6+56+2;") {
		t.Errorf("output %q", out)
	}
}

func TestDefineWordBoundary(t *testing.T) {
	out, diags := expand(t, "#define N 10\nint Nx = N + xN;", nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %s", diags)
	}
	if !strings.Contains(out, "int Nx = 10 + xN;") {
		t.Errorf("macro replaced inside identifier: %q", out)
	}
}

func TestStringsAndCommentsUntouched(t *testing.T) {
	out, diags := expand(t, "#define N 10\nchar *s = \"N\"; // N here\nint x = N;", nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %s", diags)
	}
	if !strings.Contains(out, `"N"`) {
		t.Errorf("macro replaced in string: %q", out)
	}
	if !strings.Contains(out, "// N here") {
		t.Errorf("macro replaced in comment: %q", out)
	}
	if !strings.Contains(out, "int x = 10;") {
		t.Errorf("macro not replaced in code: %q", out)
	}
}

func TestUndef(t *testing.T) {
	out, diags := expand(t, "#define N 10\n#undef N\nint x = N;", nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %s", diags)
	}
	if !strings.Contains(out, "int x = N;") {
		t.Errorf("output %q", out)
	}
}

func TestIfdef(t *testing.T) {
	src := `#define FEATURE 1
#ifdef FEATURE
int a;
#else
int b;
#endif
#ifndef FEATURE
int c;
#else
int d;
#endif`
	out, diags := expand(t, src, nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %s", diags)
	}
	for _, want := range []string{"int a;", "int d;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
	for _, banned := range []string{"int b;", "int c;"} {
		if strings.Contains(out, banned) {
			t.Errorf("unexpected %q in %q", banned, out)
		}
	}
}

func TestNestedIfdef(t *testing.T) {
	src := `#define A 1
#ifdef A
#ifdef B
int ab;
#else
int a_only;
#endif
#endif`
	out, diags := expand(t, src, nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %s", diags)
	}
	if !strings.Contains(out, "int a_only;") || strings.Contains(out, "int ab;") {
		t.Errorf("output %q", out)
	}
}

func TestUnterminatedIfdef(t *testing.T) {
	_, diags := expand(t, "#ifdef X\nint a;", nil)
	if !diags.HasErrors() {
		t.Error("expected error for unterminated #ifdef")
	}
}

func TestElseWithoutIf(t *testing.T) {
	_, diags := expand(t, "#else\n", nil)
	if !diags.HasErrors() {
		t.Error("expected error for stray #else")
	}
}

func TestInclude(t *testing.T) {
	files := map[string]string{"defs.h": "#define W 3\ntypedef int word;\n"}
	out, diags := expand(t, "#include \"defs.h\"\nword x = W;", files)
	if diags.HasErrors() {
		t.Fatalf("errors: %s", diags)
	}
	if !strings.Contains(out, "typedef int word;") {
		t.Errorf("include body missing: %q", out)
	}
	if !strings.Contains(out, "word x = 3;") {
		t.Errorf("macro from include not applied: %q", out)
	}
}

func TestIncludeMissing(t *testing.T) {
	_, diags := expand(t, "#include \"nope.h\"\n", map[string]string{})
	if !diags.HasErrors() {
		t.Error("expected error for missing include")
	}
}

func TestIncludeCycle(t *testing.T) {
	files := map[string]string{"a.h": "#include \"a.h\"\n"}
	_, diags := expand(t, "#include \"a.h\"\n", files)
	if !diags.HasErrors() {
		t.Error("expected error for include cycle")
	}
}

func TestIncludeNoResolver(t *testing.T) {
	_, diags := expand(t, "#include <stdio.h>\n", nil)
	if !diags.HasErrors() {
		t.Error("expected error without resolver")
	}
}

func TestLineContinuation(t *testing.T) {
	out, diags := expand(t, "#define LONGM 1 + \\\n 2\nint x = LONGM;", nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %s", diags)
	}
	normalized := strings.Join(strings.Fields(out), " ")
	if !strings.Contains(normalized, "int x = 1 + 2;") {
		t.Errorf("output %q", out)
	}
}

func TestFunctionLikeMacroRejected(t *testing.T) {
	_, diags := expand(t, "#define F(x) ((x)+1)\n", nil)
	if !diags.HasErrors() {
		t.Error("expected error for function-like macro")
	}
}

func TestPredefine(t *testing.T) {
	var diags source.DiagList
	p := New(&diags, nil)
	p.Define("MODE", "2")
	out := p.Expand(source.NewFile("m.ecl", "int m = MODE;"))
	if !strings.Contains(out.Content, "int m = 2;") {
		t.Errorf("output %q", out.Content)
	}
	if got := p.Macros()["MODE"]; got != "2" {
		t.Errorf("Macros()[MODE] = %q", got)
	}
}

func TestRecursiveMacroTerminates(t *testing.T) {
	// Self-referential macro must not hang; bounded rounds leave text.
	out, _ := expand(t, "#define X X+1\nint v = X;", nil)
	if !strings.Contains(out, "int v =") {
		t.Errorf("output %q", out)
	}
}

func TestLineStructurePreserved(t *testing.T) {
	src := "#define N 1\nint a = N;\nint b;\n"
	out, diags := expand(t, src, nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %s", diags)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 3 || strings.TrimSpace(lines[1]) != "int a = 1;" {
		t.Errorf("line structure changed: %q", out)
	}
}
