// Package pp implements the small C preprocessor subset that ECL
// sources use: object-like #define macros, #undef, #include of local
// files, and #ifdef/#ifndef/#else/#endif conditionals. The output is a
// single flattened source string suitable for lexing; line structure is
// preserved so diagnostics still point at sensible locations.
package pp

import (
	"fmt"
	"strings"

	"repro/internal/source"
)

// Resolver maps an include path to file contents. A nil Resolver makes
// every #include an error, which suits single-file compilation.
type Resolver func(path string) (string, error)

// MapResolver builds a Resolver from an in-memory path -> contents map.
func MapResolver(files map[string]string) Resolver {
	return func(path string) (string, error) {
		if s, ok := files[path]; ok {
			return s, nil
		}
		return "", fmt.Errorf("include %q not found", path)
	}
}

// Preprocessor expands one translation unit.
type Preprocessor struct {
	diags   *source.DiagList
	resolve Resolver
	macros  map[string]string
	depth   int
}

// maxIncludeDepth bounds nested includes to catch cycles.
const maxIncludeDepth = 16

// New returns a preprocessor reporting errors to diags and resolving
// includes through resolve (which may be nil).
func New(diags *source.DiagList, resolve Resolver) *Preprocessor {
	return &Preprocessor{
		diags:   diags,
		resolve: resolve,
		macros:  make(map[string]string),
	}
}

// Define adds a predefined object-like macro, as if by #define.
func (p *Preprocessor) Define(name, body string) { p.macros[name] = body }

// Macros returns a copy of the currently defined macro table.
func (p *Preprocessor) Macros() map[string]string {
	m := make(map[string]string, len(p.macros))
	for k, v := range p.macros {
		m[k] = v
	}
	return m
}

// Expand preprocesses the file and returns a new File holding the
// flattened, macro-expanded content under the same name.
func (p *Preprocessor) Expand(f *source.File) *source.File {
	out := p.expandString(f.Name, f.Content)
	return source.NewFile(f.Name, out)
}

func (p *Preprocessor) expandString(name, content string) string {
	var out strings.Builder
	lines := strings.Split(content, "\n")

	// condStack tracks nested conditionals: each entry records whether
	// the current branch is live and whether any branch so far was taken.
	type cond struct{ live, taken bool }
	var condStack []cond
	live := func() bool {
		for _, c := range condStack {
			if !c.live {
				return false
			}
		}
		return true
	}

	for i := 0; i < len(lines); i++ {
		line := lines[i]
		// Handle backslash line continuation for directives and macros.
		for strings.HasSuffix(strings.TrimRight(line, " \t"), "\\") && i+1 < len(lines) {
			line = strings.TrimSuffix(strings.TrimRight(line, " \t"), "\\") + " " + lines[i+1]
			i++
			out.WriteByte('\n') // keep line count roughly aligned
		}
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "#") {
			if live() {
				out.WriteString(p.substitute(line))
			}
			out.WriteByte('\n')
			continue
		}

		directive, rest := splitDirective(trimmed)
		switch directive {
		case "define":
			if live() {
				nm, body := splitFirstWord(rest)
				switch {
				case nm == "":
					p.diags.Errorf(source.Pos{}, "%s: #define with no macro name", name)
				case strings.HasPrefix(body, "("):
					// splitFirstWord leaves body starting at '(' only when
					// it directly abuts the name: a function-like macro.
					p.diags.Errorf(source.Pos{}, "%s: function-like macro %q not supported", name, nm)
				default:
					p.macros[nm] = strings.TrimSpace(body)
				}
			}
		case "undef":
			if live() {
				nm, _ := splitFirstWord(rest)
				delete(p.macros, nm)
			}
		case "include":
			if live() {
				p.handleInclude(name, rest, &out)
			}
		case "ifdef", "ifndef":
			nm, _ := splitFirstWord(rest)
			_, defined := p.macros[nm]
			want := defined
			if directive == "ifndef" {
				want = !defined
			}
			condStack = append(condStack, cond{live: want, taken: want})
		case "else":
			if len(condStack) == 0 {
				p.diags.Errorf(source.Pos{}, "%s: #else without matching #ifdef", name)
			} else {
				c := &condStack[len(condStack)-1]
				c.live = !c.taken
				c.taken = true
			}
		case "endif":
			if len(condStack) == 0 {
				p.diags.Errorf(source.Pos{}, "%s: #endif without matching #ifdef", name)
			} else {
				condStack = condStack[:len(condStack)-1]
			}
		case "pragma":
			// Ignored.
		default:
			p.diags.Errorf(source.Pos{}, "%s: unsupported preprocessor directive #%s", name, directive)
		}
		out.WriteByte('\n') // directives become blank lines
	}
	if len(condStack) != 0 {
		p.diags.Errorf(source.Pos{}, "%s: unterminated #ifdef", name)
	}
	return out.String()
}

func (p *Preprocessor) handleInclude(from, rest string, out *strings.Builder) {
	rest = strings.TrimSpace(rest)
	var path string
	switch {
	case strings.HasPrefix(rest, "\""):
		end := strings.Index(rest[1:], "\"")
		if end < 0 {
			p.diags.Errorf(source.Pos{}, "%s: malformed #include", from)
			return
		}
		path = rest[1 : 1+end]
	case strings.HasPrefix(rest, "<"):
		end := strings.Index(rest, ">")
		if end < 0 {
			p.diags.Errorf(source.Pos{}, "%s: malformed #include", from)
			return
		}
		path = rest[1:end]
	default:
		p.diags.Errorf(source.Pos{}, "%s: malformed #include", from)
		return
	}
	if p.resolve == nil {
		p.diags.Errorf(source.Pos{}, "%s: cannot resolve #include %q (no resolver)", from, path)
		return
	}
	if p.depth >= maxIncludeDepth {
		p.diags.Errorf(source.Pos{}, "%s: include nesting too deep at %q", from, path)
		return
	}
	content, err := p.resolve(path)
	if err != nil {
		p.diags.Errorf(source.Pos{}, "%s: %v", from, err)
		return
	}
	p.depth++
	out.WriteString(p.expandString(path, content))
	p.depth--
}

// substitute performs iterated object-macro replacement on one line,
// respecting identifier boundaries and skipping string/char literals
// and comments.
func (p *Preprocessor) substitute(line string) string {
	const maxRounds = 16
	for round := 0; round < maxRounds; round++ {
		replaced, changed := p.substituteOnce(line)
		if !changed {
			return replaced
		}
		line = replaced
	}
	return line
}

func (p *Preprocessor) substituteOnce(line string) (string, bool) {
	var out strings.Builder
	changed := false
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == '"' || c == '\'':
			quote := c
			out.WriteByte(c)
			i++
			for i < len(line) && line[i] != quote {
				if line[i] == '\\' && i+1 < len(line) {
					out.WriteByte(line[i])
					i++
				}
				out.WriteByte(line[i])
				i++
			}
			if i < len(line) {
				out.WriteByte(line[i])
				i++
			}
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			out.WriteString(line[i:])
			i = len(line)
		case isIdentStart(c):
			j := i + 1
			for j < len(line) && isIdentPart(line[j]) {
				j++
			}
			word := line[i:j]
			if body, ok := p.macros[word]; ok {
				out.WriteString(body)
				changed = true
			} else {
				out.WriteString(word)
			}
			i = j
		default:
			out.WriteByte(c)
			i++
		}
	}
	return out.String(), changed
}

func isIdentStart(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || '0' <= c && c <= '9' }

func splitDirective(line string) (directive, rest string) {
	s := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	return splitFirstWord(s)
}

func splitFirstWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' || s[i] == '(' && i > 0 {
			return s[:i], s[i:]
		}
	}
	return s, ""
}
