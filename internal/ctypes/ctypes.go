// Package ctypes implements ECL's C type system: scalar types, arrays,
// structs, unions, enums, and typedefs, with size and alignment
// computed for a 32-bit big-endian MIPS R3000 target (the processor
// the paper's Table 1 measurements use).
package ctypes

import (
	"fmt"
	"strings"
)

// Kind discriminates the type representations.
type Kind int

// Type kinds.
const (
	KindVoid Kind = iota
	KindBool
	KindInt   // all integer scalars, parameterized by size/signedness
	KindFloat // float and double, parameterized by size
	KindArray
	KindStruct // also unions
	KindEnum
	KindPointer
)

// Type is the interface implemented by all ECL types.
type Type interface {
	Kind() Kind
	// Size returns the storage size in bytes (MIPS R3000 layout).
	Size() int
	// Align returns the required alignment in bytes.
	Align() int
	// String returns the C spelling of the type.
	String() string
}

// ---------------------------------------------------------------------------
// Scalars

// VoidType is the C void type.
type VoidType struct{}

// Kind returns KindVoid.
func (*VoidType) Kind() Kind { return KindVoid }

// Size returns 0: void has no storage.
func (*VoidType) Size() int { return 0 }

// Align returns 1.
func (*VoidType) Align() int { return 1 }

func (*VoidType) String() string { return "void" }

// BoolType is ECL's bool, stored as one byte.
type BoolType struct{}

// Kind returns KindBool.
func (*BoolType) Kind() Kind { return KindBool }

// Size returns 1.
func (*BoolType) Size() int { return 1 }

// Align returns 1.
func (*BoolType) Align() int { return 1 }

func (*BoolType) String() string { return "bool" }

// IntType is an integer scalar: char, short, int, long and their
// unsigned variants.
type IntType struct {
	Bytes    int // 1, 2, or 4
	Unsigned bool
	Name     string // C spelling
}

// Kind returns KindInt.
func (*IntType) Kind() Kind { return KindInt }

// Size returns the byte width.
func (t *IntType) Size() int { return t.Bytes }

// Align equals the size on MIPS.
func (t *IntType) Align() int { return t.Bytes }

func (t *IntType) String() string { return t.Name }

// FloatType is float (4 bytes) or double (8 bytes).
type FloatType struct {
	Bytes int
	Name  string
}

// Kind returns KindFloat.
func (*FloatType) Kind() Kind { return KindFloat }

// Size returns the byte width.
func (t *FloatType) Size() int { return t.Bytes }

// Align equals the size on MIPS (doubles are 8-aligned).
func (t *FloatType) Align() int { return t.Bytes }

func (t *FloatType) String() string { return t.Name }

// Predeclared scalar types. They are singletons: pointer equality is
// type identity for scalars.
var (
	Void   = &VoidType{}
	Bool   = &BoolType{}
	Char   = &IntType{Bytes: 1, Unsigned: false, Name: "char"}
	SChar  = &IntType{Bytes: 1, Unsigned: false, Name: "signed char"}
	UChar  = &IntType{Bytes: 1, Unsigned: true, Name: "unsigned char"}
	Short  = &IntType{Bytes: 2, Unsigned: false, Name: "short"}
	UShort = &IntType{Bytes: 2, Unsigned: true, Name: "unsigned short"}
	Int    = &IntType{Bytes: 4, Unsigned: false, Name: "int"}
	UInt   = &IntType{Bytes: 4, Unsigned: true, Name: "unsigned int"}
	Long   = &IntType{Bytes: 4, Unsigned: false, Name: "long"}
	ULong  = &IntType{Bytes: 4, Unsigned: true, Name: "unsigned long"}
	Float  = &FloatType{Bytes: 4, Name: "float"}
	Double = &FloatType{Bytes: 8, Name: "double"}
)

// ---------------------------------------------------------------------------
// Aggregates

// ArrayType is a fixed-length array.
type ArrayType struct {
	Elem Type
	Len  int
}

// Kind returns KindArray.
func (*ArrayType) Kind() Kind { return KindArray }

// Size is element size times length.
func (t *ArrayType) Size() int { return t.Elem.Size() * t.Len }

// Align is the element alignment.
func (t *ArrayType) Align() int { return t.Elem.Align() }

func (t *ArrayType) String() string { return fmt.Sprintf("%s[%d]", t.Elem, t.Len) }

// StructField is one laid-out member of a struct or union.
type StructField struct {
	Name   string
	Type   Type
	Offset int // byte offset; 0 for every union member
}

// StructType is a struct or union with computed layout.
type StructType struct {
	Union  bool
	Tag    string // optional; "" for anonymous
	Fields []StructField

	size  int
	align int
}

// Kind returns KindStruct.
func (*StructType) Kind() Kind { return KindStruct }

// Size returns the padded total size.
func (t *StructType) Size() int { return t.size }

// Align returns the maximum member alignment.
func (t *StructType) Align() int { return t.align }

func (t *StructType) String() string {
	kw := "struct"
	if t.Union {
		kw = "union"
	}
	if t.Tag != "" {
		return kw + " " + t.Tag
	}
	var b strings.Builder
	b.WriteString(kw)
	b.WriteString(" {")
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteString(";")
		}
		fmt.Fprintf(&b, " %s %s", f.Type, f.Name)
	}
	b.WriteString(" }")
	return b.String()
}

// Field returns the field with the given name, or nil.
func (t *StructType) Field(name string) *StructField {
	for i := range t.Fields {
		if t.Fields[i].Name == name {
			return &t.Fields[i]
		}
	}
	return nil
}

// NewStruct lays out a struct (or union when union is true) from its
// fields, computing offsets, padding, and total size per the MIPS ABI:
// each member aligned to its natural alignment, total size rounded up
// to the struct alignment.
func NewStruct(union bool, tag string, fields []StructField) *StructType {
	st := &StructType{Union: union, Tag: tag, align: 1}
	off := 0
	for _, f := range fields {
		a := f.Type.Align()
		if a > st.align {
			st.align = a
		}
		if union {
			f.Offset = 0
			if s := f.Type.Size(); s > off {
				off = s
			}
		} else {
			off = alignUp(off, a)
			f.Offset = off
			off += f.Type.Size()
		}
		st.Fields = append(st.Fields, f)
	}
	st.size = alignUp(off, st.align)
	return st
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// EnumType is a C enum; it behaves as int.
type EnumType struct {
	Tag   string
	Items map[string]int64
}

// Kind returns KindEnum.
func (*EnumType) Kind() Kind { return KindEnum }

// Size returns 4: enums are ints.
func (*EnumType) Size() int { return 4 }

// Align returns 4.
func (*EnumType) Align() int { return 4 }

func (t *EnumType) String() string {
	if t.Tag != "" {
		return "enum " + t.Tag
	}
	return "enum {...}"
}

// PointerType is a pointer; permitted only in extracted data code.
type PointerType struct {
	Elem Type
}

// Kind returns KindPointer.
func (*PointerType) Kind() Kind { return KindPointer }

// Size returns 4 (32-bit target).
func (*PointerType) Size() int { return 4 }

// Align returns 4.
func (*PointerType) Align() int { return 4 }

func (t *PointerType) String() string { return t.Elem.String() + " *" }

// ---------------------------------------------------------------------------
// Predicates and conversions

// IsInteger reports whether t is an integer scalar (including bool,
// char, and enum, which C treats as integers in arithmetic).
func IsInteger(t Type) bool {
	switch t.Kind() {
	case KindInt, KindBool, KindEnum:
		return true
	}
	return false
}

// IsArithmetic reports whether t supports arithmetic operators.
func IsArithmetic(t Type) bool { return IsInteger(t) || t.Kind() == KindFloat }

// IsScalar reports whether t is a scalar value type (arithmetic or
// pointer): the types that can be tested in conditions.
func IsScalar(t Type) bool { return IsArithmetic(t) || t.Kind() == KindPointer }

// IsUnsigned reports whether integer arithmetic on t is unsigned.
func IsUnsigned(t Type) bool {
	if it, ok := t.(*IntType); ok {
		return it.Unsigned
	}
	return false
}

// Promote applies the C integer promotions: bool, char, short, and
// enum become int.
func Promote(t Type) Type {
	switch t.Kind() {
	case KindBool, KindEnum:
		return Int
	case KindInt:
		if t.Size() < 4 {
			return Int
		}
	}
	return t
}

// UsualArithmetic returns the common type of a binary arithmetic
// operation per the usual arithmetic conversions (32-bit C subset:
// double > float > unsigned int > int).
func UsualArithmetic(a, b Type) Type {
	if a == Double || b == Double {
		return Double
	}
	if a == Float || b == Float {
		return Float
	}
	pa, pb := Promote(a), Promote(b)
	if IsUnsigned(pa) || IsUnsigned(pb) {
		return UInt
	}
	return Int
}

// Identical reports structural type identity. Scalars are singletons;
// aggregates compare recursively.
func Identical(a, b Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind() != b.Kind() {
		return false
	}
	switch at := a.(type) {
	case *ArrayType:
		bt := b.(*ArrayType)
		return at.Len == bt.Len && Identical(at.Elem, bt.Elem)
	case *StructType:
		bt := b.(*StructType)
		if at.Union != bt.Union || len(at.Fields) != len(bt.Fields) {
			return false
		}
		for i := range at.Fields {
			if at.Fields[i].Name != bt.Fields[i].Name || !Identical(at.Fields[i].Type, bt.Fields[i].Type) {
				return false
			}
		}
		return true
	case *PointerType:
		return Identical(at.Elem, b.(*PointerType).Elem)
	case *IntType:
		bt := b.(*IntType)
		return at.Bytes == bt.Bytes && at.Unsigned == bt.Unsigned
	case *FloatType:
		return at.Bytes == b.(*FloatType).Bytes
	}
	return false
}

// AssignableTo reports whether a value of type from may be assigned to
// a location of type to: identical types, or any two arithmetic types
// (C converts implicitly).
func AssignableTo(from, to Type) bool {
	if Identical(from, to) {
		return true
	}
	return IsArithmetic(from) && IsArithmetic(to)
}
