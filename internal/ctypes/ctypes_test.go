package ctypes

import (
	"testing"
	"testing/quick"
)

func TestScalarSizes(t *testing.T) {
	cases := map[Type]int{
		Void: 0, Bool: 1, Char: 1, UChar: 1, Short: 2, UShort: 2,
		Int: 4, UInt: 4, Long: 4, ULong: 4, Float: 4, Double: 8,
	}
	for ty, want := range cases {
		if ty.Size() != want {
			t.Errorf("sizeof(%s) = %d, want %d", ty, ty.Size(), want)
		}
	}
}

func TestStructLayoutPadding(t *testing.T) {
	st := NewStruct(false, "", []StructField{
		{Name: "c", Type: Char},
		{Name: "i", Type: Int},
		{Name: "s", Type: Short},
	})
	if st.Field("c").Offset != 0 || st.Field("i").Offset != 4 || st.Field("s").Offset != 8 {
		t.Errorf("offsets: c=%d i=%d s=%d", st.Field("c").Offset, st.Field("i").Offset, st.Field("s").Offset)
	}
	if st.Size() != 12 {
		t.Errorf("size = %d, want 12", st.Size())
	}
	if st.Align() != 4 {
		t.Errorf("align = %d, want 4", st.Align())
	}
}

func TestUnionLayout(t *testing.T) {
	u := NewStruct(true, "", []StructField{
		{Name: "b", Type: &ArrayType{Elem: UChar, Len: 6}},
		{Name: "i", Type: Int},
	})
	if u.Field("b").Offset != 0 || u.Field("i").Offset != 0 {
		t.Error("union members must share offset 0")
	}
	if u.Size() != 8 { // max(6,4) rounded to align 4
		t.Errorf("size = %d, want 8", u.Size())
	}
}

func TestDoubleAlignment(t *testing.T) {
	st := NewStruct(false, "", []StructField{
		{Name: "c", Type: Char},
		{Name: "d", Type: Double},
	})
	if st.Field("d").Offset != 8 {
		t.Errorf("double offset = %d, want 8", st.Field("d").Offset)
	}
	if st.Size() != 16 {
		t.Errorf("size = %d, want 16", st.Size())
	}
}

func TestArrayType(t *testing.T) {
	at := &ArrayType{Elem: Int, Len: 10}
	if at.Size() != 40 || at.Align() != 4 {
		t.Errorf("array: size=%d align=%d", at.Size(), at.Align())
	}
}

func TestPromote(t *testing.T) {
	for _, ty := range []Type{Bool, Char, UChar, Short, UShort} {
		if Promote(ty) != Int {
			t.Errorf("Promote(%s) = %s, want int", ty, Promote(ty))
		}
	}
	if Promote(UInt) != UInt || Promote(Double) != Double {
		t.Error("promotion should not change uint/double")
	}
}

func TestUsualArithmetic(t *testing.T) {
	cases := []struct {
		a, b, want Type
	}{
		{Char, Char, Int},
		{Int, UInt, UInt},
		{UChar, Int, Int},
		{Int, Double, Double},
		{Float, Int, Float},
		{UShort, Short, Int},
	}
	for _, c := range cases {
		if got := UsualArithmetic(c.a, c.b); got != c.want {
			t.Errorf("UsualArithmetic(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestIdentical(t *testing.T) {
	a1 := &ArrayType{Elem: UChar, Len: 4}
	a2 := &ArrayType{Elem: UChar, Len: 4}
	a3 := &ArrayType{Elem: UChar, Len: 5}
	if !Identical(a1, a2) || Identical(a1, a3) {
		t.Error("array identity wrong")
	}
	s1 := NewStruct(false, "", []StructField{{Name: "x", Type: Int}})
	s2 := NewStruct(false, "", []StructField{{Name: "x", Type: Int}})
	s3 := NewStruct(false, "", []StructField{{Name: "y", Type: Int}})
	if !Identical(s1, s2) || Identical(s1, s3) {
		t.Error("struct identity wrong")
	}
	if Identical(Int, UInt) || !Identical(Int, Long) {
		// int and long are both 4-byte signed on this target.
		t.Error("scalar identity wrong")
	}
}

func TestAssignableTo(t *testing.T) {
	if !AssignableTo(Char, Int) || !AssignableTo(Double, Int) {
		t.Error("arithmetic conversions must be assignable")
	}
	arr := &ArrayType{Elem: UChar, Len: 2}
	if AssignableTo(arr, Int) {
		t.Error("array to int must not be assignable (cast required)")
	}
}

// Property: struct size is always a multiple of its alignment and
// covers every field.
func TestPropertyLayoutInvariants(t *testing.T) {
	types := []Type{Bool, Char, UChar, Short, UShort, Int, UInt, Double}
	f := func(picks []uint8) bool {
		if len(picks) == 0 || len(picks) > 12 {
			return true
		}
		var fields []StructField
		for i, p := range picks {
			fields = append(fields, StructField{
				Name: string(rune('a' + i)),
				Type: types[int(p)%len(types)],
			})
		}
		st := NewStruct(false, "", fields)
		if st.Size()%st.Align() != 0 {
			return false
		}
		for _, fl := range st.Fields {
			if fl.Offset%fl.Type.Align() != 0 {
				return false
			}
			if fl.Offset+fl.Type.Size() > st.Size() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
