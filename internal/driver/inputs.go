package driver

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CollectInputs expands directory arguments into their .ecl files
// (sorted), keeping plain files as given, and reports whether any
// argument was a directory (which switches the CLI tools into batch
// mode). A directory with no .ecl files underneath is an error.
func CollectInputs(args []string) (paths []string, sawDir bool, err error) {
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, false, err
		}
		if !info.IsDir() {
			paths = append(paths, arg)
			continue
		}
		sawDir = true
		var found []string
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".ecl") {
				found = append(found, path)
			}
			return nil
		})
		if err != nil {
			return nil, false, err
		}
		if len(found) == 0 {
			return nil, false, fmt.Errorf("no .ecl files under %s", arg)
		}
		sort.Strings(found)
		paths = append(paths, found...)
	}
	return paths, sawDir, nil
}
