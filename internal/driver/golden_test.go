package driver

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenArtifacts compiles the checked-in fixture module and
// compares every text artifact against its golden file. Run with
// -update to regenerate the goldens after an intentional back-end
// change.
func TestGoldenArtifacts(t *testing.T) {
	targets := []Target{TargetEsterel, TargetC, TargetGlue, TargetStats}
	res := New(0).BuildOne(Request{
		Path:    filepath.Join("testdata", "abro.ecl"),
		Targets: targets,
	})
	if res.Failed() {
		t.Fatalf("build: %v", res.Err)
	}
	if res.Module != "abro" {
		t.Fatalf("module = %q", res.Module)
	}
	for _, target := range targets {
		got := res.Artifacts[target]
		golden := filepath.Join("testdata", "abro."+string(target)+".golden")
		if *update {
			if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%s (run with -update to create)", err)
		}
		if got != string(want) {
			t.Errorf("%s artifact differs from %s;\nrun 'go test ./internal/driver -run TestGoldenArtifacts -update' if intentional.\n--- got ---\n%s\n--- want ---\n%s",
				target, golden, got, want)
		}
	}
}
