package driver

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/pipeline"
)

// incSource is the incremental fixture: the inner while loop is a pure
// data loop (extracted as a data function), and factor appears only in
// its body, so varying factor is a data-function-only edit.
func incSource(factor int) string {
	return fmt.Sprintf(`
module incworker (input pure a, input pure b, input int req,
                  output int done, output pure pulse)
{
    int acc;
    int n;
    acc = 0;
    par {
        while (1) {
            await (a);
            emit (pulse);
        }
        while (1) {
            await (b);
            emit (pulse);
        }
        while (1) {
            await (req);
            n = 0;
            while (n < 6) {
                acc = acc + %d;
                n = n + 1;
            }
            emit_v (done, acc);
        }
    }
}
`, factor)
}

func phaseStatus(t *testing.T, res *Result, ph pipeline.Phase) pipeline.Status {
	t.Helper()
	for _, pr := range res.Phases {
		if pr.Phase == ph {
			return pr.Status
		}
	}
	t.Fatalf("phase %s not in result (phases: %+v)", ph, res.Phases)
	return ""
}

// TestIncrementalDataEditReplaysEFSM is the PR's acceptance criterion
// at the driver level: over a warm store, editing only a data-function
// body re-runs the front end and emission but replays the cached EFSM
// phase, asserted on Result.Phases and CacheStats().Phases — and the
// artifacts are byte-identical to an uncached compile of the edited
// source.
func TestIncrementalDataEditReplaysEFSM(t *testing.T) {
	dir := t.TempDir()
	targets := []Target{TargetC, TargetEsterel, TargetStats}

	cold := diskDriver(t, dir).BuildOne(Request{
		Path: "inc.ecl", Source: incSource(3), Targets: targets,
	})
	if cold.Failed() {
		t.Fatal(cold.Err)
	}
	if st := phaseStatus(t, &cold, pipeline.PhaseEFSM); st != pipeline.StatusRebuilt {
		t.Fatalf("cold efsm = %s, want rebuilt", st)
	}

	// New process, data-edited source: the design key misses both
	// design tiers, but the efsm phase replays from the v2 store.
	warm := diskDriver(t, dir)
	res := warm.BuildOne(Request{Path: "inc.ecl", Source: incSource(5), Targets: targets})
	if res.Failed() {
		t.Fatal(res.Err)
	}
	if res.Cached || res.DiskCached {
		t.Fatalf("edited build reported design-cached (cached=%t disk=%t)", res.Cached, res.DiskCached)
	}
	if st := phaseStatus(t, &res, pipeline.PhaseEFSM); st != pipeline.StatusDiskHit {
		t.Errorf("edited efsm = %s, want disk-hit", st)
	}
	for _, ph := range []pipeline.Phase{pipeline.PhaseParse, pipeline.PhaseSem, pipeline.PhaseLower, pipeline.PhaseEmitC} {
		if st := phaseStatus(t, &res, ph); st != pipeline.StatusRebuilt {
			t.Errorf("edited %s = %s, want rebuilt", ph, st)
		}
	}
	cs := warm.CacheStats()
	if got := cs.Phases[pipeline.PhaseEFSM]; got.DiskHits != 1 || got.Rebuilds != 0 {
		t.Errorf("PhaseStats[efsm] = %+v, want exactly 1 disk hit and no rebuilds", got)
	}
	if got := cs.Phases[pipeline.PhaseEmitC]; got.Rebuilds != 1 {
		t.Errorf("PhaseStats[emit-c] = %+v, want 1 rebuild", got)
	}

	// Replayed-machine artifacts must match a fully uncached compile
	// of the edited source.
	pure := (&Driver{NoCache: true}).BuildOne(Request{Path: "inc.ecl", Source: incSource(5), Targets: targets})
	if pure.Failed() {
		t.Fatal(pure.Err)
	}
	for _, target := range targets {
		if res.Artifacts[target] != pure.Artifacts[target] {
			t.Errorf("%s artifact from replayed EFSM differs from uncached compile", target)
		}
	}
	if res.Stats == nil || pure.Stats == nil || res.Stats.EFSM.States != pure.Stats.EFSM.States {
		t.Errorf("stats differ: %+v vs %+v", res.Stats, pure.Stats)
	}
}

// TestDesignCacheReportsPseudoPhase: requests served whole from the
// design tiers carry the "design" pseudo-phase instead of a fake
// per-phase table.
func TestDesignCacheReportsPseudoPhase(t *testing.T) {
	dir := t.TempDir()
	req := Request{Path: "inc.ecl", Source: incSource(3), Targets: []Target{TargetC}}
	if res := diskDriver(t, dir).BuildOne(req); res.Failed() {
		t.Fatal(res.Err)
	}
	warm := diskDriver(t, dir)
	res := warm.BuildOne(req)
	if !res.DiskCached {
		t.Fatal("expected v1 disk replay")
	}
	if len(res.Phases) != 1 || res.Phases[0].Phase != pipeline.PhaseDesign ||
		res.Phases[0].Status != pipeline.StatusDiskHit {
		t.Errorf("Phases = %+v, want one design/disk-hit entry", res.Phases)
	}
	again := warm.BuildOne(req)
	if len(again.Phases) != 1 || again.Phases[0].Status != pipeline.StatusMemHit {
		t.Errorf("memory replay Phases = %+v, want one design/mem-hit entry", again.Phases)
	}
}

// TestExpandModulesStructuredDiagnostics: a malformed file mixed into
// a batch reports file/phase diagnostics through ExpandModules instead
// of a bare error.
func TestExpandModulesStructuredDiagnostics(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ecl")
	if err := os.WriteFile(bad, []byte("module broken ( {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ExpandModules(Request{Path: bad})
	if err == nil {
		t.Fatal("want error for malformed file")
	}
	var xe *ExpandError
	if !errors.As(err, &xe) {
		t.Fatalf("error is %T, want *ExpandError", err)
	}
	if len(xe.Diags) == 0 {
		t.Fatal("no diagnostics")
	}
	d := xe.Diags[0]
	if d.File != bad || d.Phase != PhaseParse {
		t.Errorf("diag = %+v, want file=%s phase=parse", d, bad)
	}
	if !strings.HasPrefix(d.Pos, bad+":") {
		t.Errorf("diag position %q does not name the file", d.Pos)
	}
	if !strings.Contains(err.Error(), "[parse]") {
		t.Errorf("error text %q lacks the phase tag", err.Error())
	}

	// Unreadable file: read-phase diagnostic.
	_, err = ExpandModules(Request{Path: filepath.Join(dir, "missing.ecl")})
	if !errors.As(err, &xe) || xe.Diags[0].Phase != PhaseRead {
		t.Errorf("missing file error = %v, want read-phase ExpandError", err)
	}

	// Empty (module-less) file: parse-phase diagnostic.
	empty := filepath.Join(dir, "empty.ecl")
	if err := os.WriteFile(empty, []byte("typedef int t;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ExpandModules(Request{Path: empty})
	if !errors.As(err, &xe) || xe.Diags[0].Phase != PhaseParse {
		t.Errorf("empty file error = %v, want parse-phase ExpandError", err)
	}
}

// TestIncrementalKeepsV1Warm: the pipeline's v2 writes must not break
// the v1 whole-design fast path — an unchanged rebuild in a new
// process is still a pure v1 artifact replay that runs no phase.
func TestIncrementalKeepsV1Warm(t *testing.T) {
	dir := t.TempDir()
	req := Request{Path: "inc.ecl", Source: incSource(3), Targets: []Target{TargetC, TargetStats}}
	if res := diskDriver(t, dir).BuildOne(req); res.Failed() {
		t.Fatal(res.Err)
	}
	store, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := &Driver{Disk: store}
	res := d.BuildOne(req)
	if !res.DiskCached {
		t.Fatal("unchanged rebuild not served by v1")
	}
	cs := d.CacheStats()
	if len(cs.Phases) != 0 {
		t.Errorf("v1 replay walked pipeline phases: %+v", cs.Phases)
	}
	if st := store.Stats(); st.PhaseHits+st.PhaseMisses != 0 {
		t.Errorf("v1 replay touched the v2 subtree: %+v", st)
	}
}
