package driver

import (
	"context"
	"testing"

	"repro/internal/eclgen"
	"repro/internal/pipeline"
)

// TestSharedFrontEndByteIdentical is the sharing acceptance criterion:
// a batch build through the file-level shared front end must produce
// byte-identical artifacts to the per-module front end (Driver.NoShare)
// for every module of a generated multi-module file. Phase content
// keys derive from the analyzed file's fingerprint, not AST node
// identity, so the two paths must be indistinguishable downstream.
func TestSharedFrontEndByteIdentical(t *testing.T) {
	src := eclgen.File(3, 12)
	targets := []Target{TargetC, TargetEsterel, TargetGlue, TargetStats}
	seed := Request{Path: "mega.ecl", Source: src, Targets: targets}

	build := func(noShare bool) map[string]map[Target]string {
		d := &Driver{NoCache: true, NoShare: noShare}
		reqs, err := d.ExpandModules(seed)
		if err != nil {
			t.Fatalf("noShare=%v: expand: %v", noShare, err)
		}
		if len(reqs) != 12 {
			t.Fatalf("noShare=%v: expanded to %d modules, want 12", noShare, len(reqs))
		}
		results, err := d.Build(context.Background(), reqs)
		if err != nil {
			t.Fatalf("noShare=%v: build: %v", noShare, err)
		}
		arts := make(map[string]map[Target]string, len(results))
		for i := range results {
			arts[results[i].Module] = results[i].Artifacts
		}
		return arts
	}

	shared, baseline := build(false), build(true)
	if len(shared) != len(baseline) {
		t.Fatalf("module sets differ: shared=%d baseline=%d", len(shared), len(baseline))
	}
	for mod, want := range baseline {
		got, ok := shared[mod]
		if !ok {
			t.Fatalf("module %s missing from shared build", mod)
		}
		for _, target := range targets {
			if got[target] != want[target] {
				t.Errorf("module %s target %s: shared and per-module artifacts differ", mod, target)
			}
		}
	}
}

// TestSharedFrontEndStats pins the observable contract of sharing: one
// batch over an N-module file parses and analyzes once (rebuilt) and
// records every per-module walk as "shared" — the counters eclc
// -explain prints and CI greps.
func TestSharedFrontEndStats(t *testing.T) {
	src := eclgen.File(5, 8)
	d := &Driver{NoCache: true}
	reqs, err := d.ExpandModules(Request{Path: "mega.ecl", Source: src, Targets: []Target{TargetC}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Build(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	phases := d.CacheStats().Phases
	for _, ph := range []pipeline.Phase{pipeline.PhaseParse, pipeline.PhaseSem} {
		c := phases[ph]
		if c.Rebuilds != 1 {
			t.Errorf("phase %s: rebuilds = %d, want 1 (one front end per file)", ph, c.Rebuilds)
		}
		if c.Shared != int64(len(reqs)) {
			t.Errorf("phase %s: shared = %d, want %d (one per module)", ph, c.Shared, len(reqs))
		}
	}
	if c := phases[pipeline.PhaseLower]; c.Rebuilds != int64(len(reqs)) {
		t.Errorf("phase lower: rebuilds = %d, want %d (lowering is per-module)", c.Rebuilds, len(reqs))
	}
}
