// Package driver orchestrates the ECL compilation pipeline for many
// modules at once. It is the one place that wires up the paper's flow
// — parse, analyze, split into reactive + data parts, compile to an
// EFSM, emit artifacts — so the command-line tools (eclc, eclsim,
// eclbench) and library users all share the same entry point instead
// of replumbing the phases by hand.
//
// A Driver runs a batch of Requests over a bounded worker pool,
// deduplicates work through a content-hash keyed design cache (repeated
// builds of unchanged sources are near-free), and reports failures as
// structured Diagnostics carrying the file, module, and pipeline phase
// instead of bare error strings.
package driver

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/analyze"
	"repro/internal/cache"
	"repro/internal/cache/remote"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/source"
)

// Phase names the pipeline stage a diagnostic originated in.
type Phase string

// Pipeline phases, in flow order.
const (
	// PhaseRead covers loading source text from disk.
	PhaseRead Phase = "read"
	// PhaseParse covers preprocessing, parsing, and semantic analysis
	// (the front end up to a checked AST).
	PhaseParse Phase = "parse"
	// PhaseLower covers the reactive/data split into the Esterel
	// kernel (including module selection).
	PhaseLower Phase = "lower"
	// PhaseCompile covers EFSM construction and minimization.
	PhaseCompile Phase = "compile"
	// PhaseEmit covers back-end artifact generation.
	PhaseEmit Phase = "emit"
)

// Diagnostic is one structured build message: where it happened (file,
// module, position), in which phase, and what went wrong.
type Diagnostic struct {
	File     string
	Module   string
	Phase    Phase
	Pos      string // "file:line:col" when known, else ""
	Severity source.Severity
	Message  string
}

// String renders the diagnostic in a grep-friendly single line.
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Pos != "" {
		b.WriteString(d.Pos)
	} else {
		b.WriteString(d.File)
	}
	if d.Module != "" {
		fmt.Fprintf(&b, ": module %s", d.Module)
	}
	fmt.Fprintf(&b, ": [%s] %s: %s", d.Phase, d.Severity, d.Message)
	return b.String()
}

// Request asks for one module to be compiled to a set of targets.
type Request struct {
	// Path is the source file path; it is read from disk when Source
	// is empty, and otherwise used only as the display name.
	Path string
	// Source is the ECL source text (optional; see Path).
	Source string
	// Module selects the module to compile; empty means the last
	// module declared in the file (the eclc convention).
	Module string
	// Targets lists the artifacts to emit; empty compiles the design
	// without emitting anything (useful for simulation and stats-free
	// builds).
	Targets []Target
	// GoPackage is the package name for TargetGo (default: the module
	// name).
	GoPackage string
	// Options configures the pipeline (splitter policy, preprocessor
	// tables, EFSM bounds, minimization).
	Options core.Options
	// Analyze runs the static-analysis phase over the compiled design
	// and fills Result.Findings. Requests with Analyze set always walk
	// the phase graph (the design-level artifact tiers store rendered
	// outputs, not findings), so the analyze phase itself can report a
	// cache hit or rebuild of its own.
	Analyze bool
}

// Result reports one request's outcome. Artifacts maps each requested
// target to its rendered text; Design exposes the compiled module for
// callers that want to simulate or inspect it; Diags carries
// structured failure information when Err is non-nil.
//
// A result served entirely from the persistent artifact cache
// (DiskCached) carries the artifacts and stats but a nil Design: the
// disk tier stores rendered outputs, not compiled intermediate state.
// Requests with no targets always compile, so they always get a
// Design.
type Result struct {
	Path   string
	Module string // resolved module name (never empty on success)

	Artifacts map[Target]string
	Stats     *core.Stats
	Design    *core.Design

	// Findings holds the static-analysis diagnostics (nil unless the
	// request set Analyze; non-nil but possibly empty when it ran).
	Findings []analyze.Finding

	// FileFindings holds the design-level diagnostics for the request's
	// whole file (the analyze-file phase). Every module request of the
	// same file carries the same findings; batch callers dedup before
	// printing.
	FileFindings []analyze.Finding

	// Phases records how each pipeline phase was satisfied for this
	// request. A request that ran the pipeline carries one entry per
	// phase walked (parse ... emit); a request served entirely from
	// the design-level cache carries a single pseudo-phase entry
	// (pipeline.PhaseDesign) naming the tier that served it.
	Phases []pipeline.PhaseResult

	Diags        []Diagnostic
	Err          error
	Cached       bool // served without recompiling (any cache tier)
	DiskCached   bool // served from the persistent on-disk tier
	RemoteCached bool // served from the shared remote tier
}

// Failed reports whether the request produced an error.
func (r *Result) Failed() bool { return r.Err != nil }

// Driver runs batches of compilation requests. The zero value is ready
// to use: it sizes its worker pool to GOMAXPROCS and caches compiled
// designs by content hash. A Driver is safe for concurrent use.
//
// The cache has up to three tiers: an in-memory map (designs plus
// rendered artifacts, single-flight per content hash), a persistent
// content-addressed artifact store shared across processes (Disk), and
// a shared remote cache server (Remote) the whole fleet populates. A
// request is served memory → disk → remote → compile; a remote hit is
// written through to the local disk tier, and fresh compiles
// repopulate every tier (the remote upload is asynchronous and
// best-effort).
type Driver struct {
	// Workers bounds the number of concurrently building requests
	// (default: GOMAXPROCS).
	Workers int
	// NoCache disables every cache tier (every request recompiles).
	NoCache bool
	// NoShare disables the file-level shared front end: every request
	// re-parses and re-analyzes its file instead of reusing the
	// per-file compilation unit. Orthogonal to NoCache; exists for the
	// per-module baseline in benchmarks and for bisecting sharing bugs.
	NoShare bool
	// Disk is the persistent second cache tier (nil: memory only).
	// Only requests with targets use it — the disk tier stores
	// rendered artifacts, so a request that needs the compiled Design
	// itself (no targets) always goes through the compiler.
	Disk *cache.Store
	// Remote is the shared third cache tier (nil: none): an HTTP
	// content-addressed cache server (eclcached) dialed with
	// remote.Dial. Like Disk it serves rendered artifacts only.
	Remote *remote.Client

	mu      sync.Mutex
	entries map[string]*cacheEntry
	pipe    *pipeline.Runner
	hits    atomic.Int64
	misses  atomic.Int64
}

// runner returns the per-driver phase-graph runner, created on first
// use with the driver's disk store and cache mode.
func (d *Driver) runner() *pipeline.Runner {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pipe == nil {
		d.pipe = &pipeline.Runner{Disk: d.Disk, NoCache: d.NoCache, NoShare: d.NoShare}
		if d.Remote != nil {
			// Assigned only when non-nil: a typed nil inside the Tier
			// interface would defeat the runner's nil checks.
			d.pipe.Remote = d.Remote
		}
	}
	return d.pipe
}

// New returns a Driver with the given worker-pool size (<= 0 means
// GOMAXPROCS).
func New(workers int) *Driver { return &Driver{Workers: workers} }

// PhaseStats aggregates per-phase cache traffic (hit/miss/rebuilt per
// pipeline phase) across a driver's builds.
type PhaseStats = pipeline.PhaseStats

// CacheStats snapshots both cache tiers' traffic.
type CacheStats struct {
	// Hits and Misses count the in-memory tier: a hit is any request
	// served without compiling and without touching disk; a miss is a
	// compile.
	Hits, Misses int64
	// DiskHits, DiskMisses, and DiskEvictions count the persistent
	// tier's whole-design (v1) manifests (all zero when the driver has
	// no Disk store).
	DiskHits, DiskMisses, DiskEvictions int64
	// RemoteHits and RemoteMisses count the shared remote tier's
	// whole-design probes; RemoteUploads counts entries (design and
	// phase) successfully pushed to it, RemoteErrors its degraded reads
	// and failed uploads (all zero when the driver has no Remote
	// client).
	RemoteHits, RemoteMisses, RemoteUploads, RemoteErrors int64
	// Phases breaks pipeline traffic down per phase: how often each
	// phase was replayed from memory, the v2 phase store, or the remote
	// tier versus rebuilt. Requests served entirely from the
	// design-level tiers do not appear here (they are counted by
	// Hits/DiskHits/RemoteHits).
	Phases PhaseStats
}

// CacheStats reports cache traffic so far across all tiers.
func (d *Driver) CacheStats() CacheStats {
	cs := CacheStats{Hits: d.hits.Load(), Misses: d.misses.Load()}
	if d.Disk != nil {
		st := d.Disk.Stats()
		cs.DiskHits, cs.DiskMisses, cs.DiskEvictions = st.Hits, st.Misses, st.Evictions
	}
	if d.Remote != nil {
		st := d.Remote.Stats()
		cs.RemoteHits, cs.RemoteMisses = st.Hits, st.Misses
		cs.RemoteUploads, cs.RemoteErrors = st.Uploads, st.Errors
	}
	d.mu.Lock()
	pipe := d.pipe
	d.mu.Unlock()
	if pipe != nil {
		cs.Phases = pipe.Stats()
	} else {
		cs.Phases = PhaseStats{}
	}
	return cs
}

// Build compiles every request concurrently over the worker pool and
// returns one Result per request, in request order. Per-request
// failures are reported in the Results (and joined into the returned
// error); a cancelled context marks the remaining requests failed with
// the context error.
func (d *Driver) Build(ctx context.Context, reqs []Request) ([]Result, error) {
	results := make([]Result, len(reqs))
	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
dispatch:
	for i := range reqs {
		// Check cancellation before the blocking acquire: select picks
		// randomly among ready cases, so a free slot could otherwise
		// win over an already-cancelled context.
		if ctx.Err() != nil {
			break dispatch
		}
		select {
		case <-ctx.Done():
			break dispatch
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = d.buildOne(reqs[i])
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Err == nil && results[i].Design == nil {
				results[i] = Result{Path: reqs[i].Path, Module: reqs[i].Module, Err: err}
			}
		}
	}
	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", describe(&results[i]), results[i].Err))
		}
	}
	return results, errors.Join(errs...)
}

// BuildOne compiles a single request synchronously.
func (d *Driver) BuildOne(req Request) Result { return d.buildOne(req) }

func describe(r *Result) string {
	if r.Module != "" {
		return r.Path + ":" + r.Module
	}
	return r.Path
}

// buildOne runs the full pipeline for one request, consulting the
// cache tiers first: memory (design or previously loaded artifacts),
// then the persistent artifact store, then a real compile.
func (d *Driver) buildOne(req Request) Result {
	res := Result{Path: req.Path, Module: req.Module}

	src := req.Source
	if src == "" {
		data, err := os.ReadFile(req.Path)
		if err != nil {
			res.Err = err
			res.Diags = []Diagnostic{{
				File: req.Path, Phase: PhaseRead,
				Severity: source.Error, Message: err.Error(),
			}}
			return res
		}
		src = string(data)
	}

	var key string
	var entry *cacheEntry
	if d.NoCache {
		entry = &cacheEntry{}
	} else {
		key = cacheKey(req.Path, src, req.Module, req.Options)
		entry = d.entry(key)
	}
	want := wantKeys(req.Targets, req.GoPackage)

	// Memory tier, artifact replay: a previous request (possibly a
	// disk hit) already holds every artifact this one needs, so serve
	// it without compiling even though no Design is cached. Analyze
	// requests skip the design-level tiers entirely — findings live in
	// the phase store, so the phase graph must be walked (its own
	// analyze snapshot makes the warm path cheap).
	if len(want) > 0 && !entry.hasDesign.Load() && !req.Analyze {
		if module, arts, ok := entry.replay(want); ok {
			d.hits.Add(1)
			res.Cached = true
			res.Phases = designPhases(pipeline.StatusMemHit, key)
			fillFromArtifacts(&res, req, module, arts)
			return res
		}
		// Disk tier. Only consulted when the memory tier cannot serve
		// the request, so every Get here is a real cross-process probe.
		if d.Disk != nil && !d.NoCache {
			if ce, ok := d.Disk.Get(key, want); ok {
				if tryFillFromArtifacts(&res, req, ce.Module, ce.Artifacts) {
					res.Cached, res.DiskCached = true, true
					res.Phases = designPhases(pipeline.StatusDiskHit, key)
					entry.absorb(ce.Module, ce.Artifacts)
					return res
				}
				// Undecodable stats blob etc.: fall through to compile.
				res = Result{Path: req.Path, Module: req.Module}
			}
		}
		// Remote tier: the shared fleet cache, tried only after both
		// local tiers miss. A hit is written through to the local disk
		// store so the next process on this machine stays off the
		// network.
		if d.Remote != nil && !d.NoCache {
			if ce, ok := d.Remote.Get(key, want); ok {
				if tryFillFromArtifacts(&res, req, ce.Module, ce.Artifacts) {
					res.Cached, res.RemoteCached = true, true
					res.Phases = designPhases(pipeline.StatusRemoteHit, key)
					if d.Disk != nil {
						d.Disk.Put(key, ce) // best-effort read-through
					}
					entry.absorb(ce.Module, ce.Artifacts)
					return res
				}
				res = Result{Path: req.Path, Module: req.Module}
			}
		}
	}

	built := false
	entry.once.Do(func() {
		built = true
		d.misses.Add(1)
		d.compileEntry(entry, req, src)
		entry.hasDesign.Store(true)
	})
	if built {
		res.Phases = entry.phases
	} else {
		d.hits.Add(1)
		res.Cached = true
		res.Phases = designPhases(pipeline.StatusMemHit, key)
	}
	if entry.module != "" {
		res.Module = entry.module
	}
	if entry.err != nil {
		res.Err = entry.err
		res.Diags = entry.diags
		return res
	}
	res.Design = entry.design
	if req.Analyze {
		findings, fileFindings, ran := entry.analyzeFindings()
		res.Findings = findings
		res.FileFindings = fileFindings
		if !built && ran {
			// The entry was compiled by an earlier, analyze-less request;
			// this one ran the rules over the memoized design just now.
			res.Phases = append(res.Phases, pipeline.PhaseResult{
				Phase: pipeline.PhaseAnalyze, Status: pipeline.StatusRebuilt,
			})
		}
	}

	if len(req.Targets) > 0 {
		res.Artifacts = make(map[Target]string, len(req.Targets))
		for _, t := range req.Targets {
			text, err := entry.artifact(t, req.GoPackage)
			if err != nil {
				res.Err = err
				res.Diags = append(res.Diags, Diagnostic{
					File: req.Path, Module: res.Module, Phase: PhaseEmit,
					Severity: source.Error,
					Message:  fmt.Sprintf("target %s: %v", t, err),
				})
				return res
			}
			res.Artifacts[t] = text
		}
		if _, ok := res.Artifacts[TargetStats]; ok {
			st := entry.design.Stats()
			res.Stats = &st
		}
		if (d.Disk != nil || d.Remote != nil) && !d.NoCache {
			d.persist(key, entry, req, &res)
		}
	}
	return res
}

// wantKeys lists the artifact-cache keys a request needs: one per
// target, plus the machine-readable stats blob when the stats target
// is requested (so a disk hit can fill Result.Stats).
func wantKeys(targets []Target, goPkg string) []string {
	if len(targets) == 0 {
		return nil
	}
	keys := make([]string, 0, len(targets)+1)
	for _, t := range targets {
		keys = append(keys, artifactKey(t, goPkg))
		if t == TargetStats {
			keys = append(keys, statsJSONKey)
		}
	}
	return keys
}

// fillFromArtifacts populates a successful artifact-only result.
func fillFromArtifacts(res *Result, req Request, module string, arts map[string]string) {
	if !tryFillFromArtifacts(res, req, module, arts) {
		// The artifacts were validated when they entered the memory
		// tier, so decoding cannot fail here; guard anyway.
		panic("driver: cached artifacts failed to decode")
	}
}

// tryFillFromArtifacts populates a result from raw cached artifacts,
// reporting false (leaving res partially filled) if the stats blob
// does not decode.
func tryFillFromArtifacts(res *Result, req Request, module string, arts map[string]string) bool {
	res.Module = module
	res.Artifacts = make(map[Target]string, len(req.Targets))
	for _, t := range req.Targets {
		res.Artifacts[t] = arts[artifactKey(t, req.GoPackage)]
		if t == TargetStats {
			var st core.Stats
			if err := json.Unmarshal([]byte(arts[statsJSONKey]), &st); err != nil {
				return false
			}
			res.Stats = &st
		}
	}
	return true
}

// persist writes this request's freshly rendered artifacts to the
// persistent tiers: the local disk store (merging with whatever the
// key already has) and, when configured, the shared remote tier (an
// asynchronous best-effort upload inside the client). Keys already
// persisted by this process are skipped, so warm rebuild loops do not
// rewrite the store every iteration.
func (d *Driver) persist(key string, entry *cacheEntry, req Request, res *Result) {
	want := wantKeys(req.Targets, req.GoPackage)
	if entry.allStored(want) {
		return
	}
	arts := make(map[string]string, len(want))
	for _, t := range req.Targets {
		arts[artifactKey(t, req.GoPackage)] = res.Artifacts[t]
	}
	if res.Stats != nil {
		data, err := json.Marshal(res.Stats)
		if err != nil {
			return
		}
		arts[statsJSONKey] = string(data)
	}
	ce := &cache.Entry{Module: res.Module, Artifacts: arts}
	// Best-effort: a full disk or unwritable store must not fail the
	// build (the store's own error counter records it). Keys are
	// marked stored only on success, so a transient write failure is
	// retried on the next rebuild of the design.
	stored := true
	if d.Disk != nil {
		stored = d.Disk.Put(key, ce) == nil
	}
	if d.Remote != nil {
		d.Remote.Put(key, ce)
	}
	if stored {
		entry.markStored(want)
	}
}

// compileEntry runs the phase graph for one design and populates its
// cache entry: the compiled design (or structured failure), per-phase
// results, and any pre-rendered artifacts (so requests for the same
// targets never re-emit).
func (d *Driver) compileEntry(entry *cacheEntry, req Request, src string) {
	pres := d.runner().Run(pipeline.Request{
		Path:      req.Path,
		Source:    src,
		Module:    req.Module,
		Opts:      req.Options,
		Emits:     emitPhases(req.Targets),
		GoPackage: req.GoPackage,
		Analyze:   req.Analyze,
	})
	entry.module = pres.Module
	entry.phases = pres.Phases
	entry.findings = pres.Findings
	entry.fileFindings = pres.FileFindings
	if pres.Err != nil {
		entry.err = pres.Err
		entry.diags = toDiags(req.Path, pres.Module, diagPhase(pres.ErrPhase), pres.Err)
		return
	}
	entry.design = pres.Design
	entry.mu.Lock()
	defer entry.mu.Unlock()
	if entry.artifacts == nil {
		entry.artifacts = make(map[string]artifactResult)
	}
	for ph, text := range pres.Artifacts {
		entry.artifacts[artifactKey(Target(pipeline.TargetName(ph)), req.GoPackage)] = artifactResult{text: text}
	}
	for ph, err := range pres.EmitErrs {
		entry.artifacts[artifactKey(Target(pipeline.TargetName(ph)), req.GoPackage)] = artifactResult{err: err}
	}
}

// emitPhases maps the request's targets onto the pipeline's emit
// phases, in request order.
func emitPhases(targets []Target) []pipeline.Phase {
	out := make([]pipeline.Phase, 0, len(targets))
	for _, t := range targets {
		if ph, ok := pipeline.EmitPhase(string(t)); ok {
			out = append(out, ph)
		}
	}
	return out
}

// diagPhase maps a pipeline phase onto the coarser diagnostic phases
// the driver has always reported (sem failures surface as parse, both
// machine phases as compile).
func diagPhase(ph pipeline.Phase) Phase {
	switch ph {
	case pipeline.PhaseParse, pipeline.PhaseSem:
		return PhaseParse
	case pipeline.PhaseLower:
		return PhaseLower
	case pipeline.PhaseEFSM, pipeline.PhaseEFSMMin:
		return PhaseCompile
	}
	return PhaseEmit
}

// designPhases is the Phases record for a request served whole from
// the design-level cache.
func designPhases(st pipeline.Status, key string) []pipeline.PhaseResult {
	return []pipeline.PhaseResult{{Phase: pipeline.PhaseDesign, Status: st, Key: key}}
}

// toDiags converts an error into structured diagnostics, splitting a
// source.DiagError into its per-position messages.
func toDiags(file, module string, phase Phase, err error) []Diagnostic {
	var de *source.DiagError
	if errors.As(err, &de) {
		out := make([]Diagnostic, 0, len(de.Diags))
		for _, d := range de.Diags {
			pos := ""
			if d.Pos.IsValid() {
				pos = d.Pos.String()
			}
			out = append(out, Diagnostic{
				File: file, Module: module, Phase: phase,
				Pos: pos, Severity: d.Severity, Message: d.Message,
			})
		}
		return out
	}
	return []Diagnostic{{
		File: file, Module: module, Phase: phase,
		Severity: source.Error, Message: err.Error(),
	}}
}

// ExpandError is the structured failure ExpandModules returns: the
// same file/phase diagnostics a batch build would report, so callers
// (and `eclc -all`) attribute an unexpandable file consistently
// instead of printing a bare error string.
type ExpandError struct {
	Diags []Diagnostic
}

// Error joins the diagnostics, one per line.
func (e *ExpandError) Error() string {
	lines := make([]string, 0, len(e.Diags))
	for _, d := range e.Diags {
		lines = append(lines, d.String())
	}
	return strings.Join(lines, "\n")
}

// ExpandModules returns one request per module declared in the
// request's file, in source order, so a batch build can compile every
// module concurrently. The per-module requests inherit the targets and
// options of the seed request. Failures (unreadable file, parse
// errors, an empty file) are reported as an *ExpandError carrying
// file/phase diagnostics.
//
// The front end this runs to discover the modules is the same
// file-level compilation unit the per-module builds reuse: lowering is
// non-mutating (sem.Info.Derive), so expansion parses and analyzes the
// file once and every subsequent build of its modules records the
// parse/sem phases as "shared" instead of re-running them.
func (d *Driver) ExpandModules(req Request) ([]Request, error) {
	src := req.Source
	if src == "" {
		data, err := os.ReadFile(req.Path)
		if err != nil {
			return nil, &ExpandError{Diags: []Diagnostic{{
				File: req.Path, Phase: PhaseRead,
				Severity: source.Error, Message: err.Error(),
			}}}
		}
		src = string(data)
	}
	mods, phase, err := d.runner().Modules(pipeline.Request{
		Path: req.Path, Source: src, Opts: req.Options,
	})
	if err != nil {
		return nil, &ExpandError{Diags: toDiags(req.Path, "", diagPhase(phase), err)}
	}
	if len(mods) == 0 {
		return nil, &ExpandError{Diags: []Diagnostic{{
			File: req.Path, Phase: PhaseParse,
			Severity: source.Error, Message: fmt.Sprintf("no modules in %s", req.Path),
		}}}
	}
	out := make([]Request, 0, len(mods))
	for _, m := range mods {
		r := req
		r.Source = src
		r.Module = m
		out = append(out, r)
	}
	return out, nil
}

// ExpandModules is the standalone form of Driver.ExpandModules for
// callers without a batch driver at hand. It expands through a
// throwaway driver, so nothing is shared with later builds — batch
// consumers should expand through the Driver they build with.
func ExpandModules(req Request) ([]Request, error) {
	return New(0).ExpandModules(req)
}

// ---------------------------------------------------------------------------
// Design cache

// statsJSONKey is the artifact-cache key of the machine-readable
// core.Stats blob stored alongside the human-readable stats target.
const statsJSONKey = "stats#json"

// artifactKey names one rendered artifact in both cache tiers. The Go
// target's key carries the requested package name ("" means the
// module-name default, which the content hash already determines).
func artifactKey(t Target, goPkg string) string {
	if t == TargetGo {
		return string(t) + "\x00" + goPkg
	}
	return string(t)
}

// cacheEntry is a single-flight slot for one (source, module, options)
// key: the first request builds the design, later requests reuse it,
// rendered artifacts are memoized per target, and artifacts loaded
// from the disk tier are replayed without compiling.
type cacheEntry struct {
	once      sync.Once
	hasDesign atomic.Bool // design (or compile error) is resolved

	module string
	design *core.Design
	diags  []Diagnostic
	err    error
	phases []pipeline.PhaseResult // pipeline walk that built this entry

	// findings memoizes the static-analysis diagnostics: filled by the
	// pipeline when the building request asked for analysis, or lazily
	// (analyzeOnce) when a later analyze request hits an entry compiled
	// without it. nil means "not analyzed yet" (the pipeline normalizes
	// an empty finding list to a non-nil slice).
	analyzeOnce  sync.Once
	findings     []analyze.Finding
	fileFindings []analyze.Finding

	mu         sync.Mutex
	diskModule string // resolved module name from a disk hit
	artifacts  map[string]artifactResult
	stored     map[string]bool // artifact keys already written to disk
}

type artifactResult struct {
	text string
	err  error
}

// artifact renders (or recalls) one target's text from the compiled
// design.
func (e *cacheEntry) artifact(t Target, goPkg string) (string, error) {
	key := artifactKey(t, goPkg)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.artifacts == nil {
		e.artifacts = make(map[string]artifactResult)
	}
	if r, ok := e.artifacts[key]; ok {
		return r.text, r.err
	}
	if goPkg == "" {
		goPkg = e.module
	}
	text, err := emit(e.design, t, goPkg)
	e.artifacts[key] = artifactResult{text, err}
	return text, err
}

// analyzeFindings returns the entry's static-analysis diagnostics,
// running the rules over the memoized design on first demand when the
// building request did not ask for them. ran reports whether this call
// performed the lazy analysis, as opposed to the findings having come
// from the pipeline walk (or from a concurrent caller's run).
func (e *cacheEntry) analyzeFindings() (findings, fileFindings []analyze.Finding, ran bool) {
	e.analyzeOnce.Do(func() {
		if e.findings != nil || e.design == nil {
			return
		}
		ran = true
		fs := analyze.Analyze(e.design)
		if fs == nil {
			fs = []analyze.Finding{}
		}
		e.findings = fs
		ffs := analyze.AnalyzeFile(e.design.Lowered.Info)
		if ffs == nil {
			ffs = []analyze.Finding{}
		}
		e.fileFindings = ffs
	})
	return e.findings, e.fileFindings, ran
}

// replay serves a request purely from artifacts already in memory
// (loaded from the disk tier by an earlier request), if every wanted
// key is present.
func (e *cacheEntry) replay(want []string) (module string, arts map[string]string, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.diskModule == "" {
		return "", nil, false
	}
	arts = make(map[string]string, len(want))
	for _, k := range want {
		r, ok := e.artifacts[k]
		if !ok || r.err != nil {
			return "", nil, false
		}
		arts[k] = r.text
	}
	return e.diskModule, arts, true
}

// absorb records a disk hit's artifacts in the memory tier and marks
// them as already persisted.
func (e *cacheEntry) absorb(module string, arts map[string]string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.diskModule = module
	if e.artifacts == nil {
		e.artifacts = make(map[string]artifactResult)
	}
	if e.stored == nil {
		e.stored = make(map[string]bool)
	}
	for k, text := range arts {
		e.artifacts[k] = artifactResult{text: text}
		e.stored[k] = true
	}
}

// allStored reports whether every key has already been persisted (in
// which case the disk write can be skipped).
func (e *cacheEntry) allStored(keys []string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, k := range keys {
		if !e.stored[k] {
			return false
		}
	}
	return true
}

// markStored records keys as persisted, after a successful disk write.
func (e *cacheEntry) markStored(keys []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stored == nil {
		e.stored = make(map[string]bool)
	}
	for _, k := range keys {
		e.stored[k] = true
	}
}

func (d *Driver) entry(key string) *cacheEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.entries == nil {
		d.entries = make(map[string]*cacheEntry)
	}
	e, ok := d.entries[key]
	if !ok {
		e = &cacheEntry{}
		d.entries[key] = e
	}
	return e
}

// cacheKeyGeneration versions the cacheKey fingerprint itself.
const cacheKeyGeneration = 1

// cacheKey fingerprints everything that determines a compiled design
// and its diagnostics: the source text, the selected module, the
// pipeline options — and the path, because diagnostics and AST
// positions carry the file name, so identical text under two paths
// must not share an entry.
func cacheKey(path, src, module string, opts core.Options) string {
	h := sha256.New()
	// Salt with the artifact-schema generation: bump it when emitted
	// artifact formats change incompatibly, so stale persistent
	// entries from older builds read as misses.
	fmt.Fprintf(h, "gen:%d\x00", cacheKeyGeneration)
	fmt.Fprintf(h, "path:%s", path)
	fmt.Fprintf(h, "\x00src:%d:", len(src))
	h.Write([]byte(src))
	fmt.Fprintf(h, "\x00mod:%s\x00pol:%d\x00min:%t", module, opts.Policy, opts.Minimize)
	fmt.Fprintf(h, "\x00cmp:%d:%d:%d",
		opts.Compile.MaxStates, opts.Compile.MaxRunsPerState, opts.Compile.MaxDecisionsPerRun)
	writeSortedMap(h, "def", opts.Defines)
	writeSortedMap(h, "inc", opts.Includes)
	return hex.EncodeToString(h.Sum(nil))
}

func writeSortedMap(h interface{ Write([]byte) (int, error) }, tag string, m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(h, "\x00%s:%d", tag, len(keys))
	for _, k := range keys {
		fmt.Fprintf(h, "\x00%s\x01%s", k, m[k])
	}
}
