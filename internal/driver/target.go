package driver

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Target names one artifact the driver can emit for a compiled module.
type Target string

// Artifact targets, mirroring the paper's outputs: the reactive part
// as Esterel, software synthesis in C or Go, the C glue header,
// Graphviz DOT of the EFSM, hardware synthesis to Verilog or VHDL, and
// a human-readable stats summary.
const (
	TargetEsterel Target = "esterel"
	TargetC       Target = "c"
	TargetGo      Target = "go"
	TargetGlue    Target = "glue"
	TargetDot     Target = "dot"
	TargetVerilog Target = "verilog"
	TargetVHDL    Target = "vhdl"
	TargetStats   Target = "stats"
)

// AllTargets lists every target the driver knows, in a stable order.
func AllTargets() []Target {
	return []Target{TargetEsterel, TargetC, TargetGo, TargetGlue,
		TargetDot, TargetVerilog, TargetVHDL, TargetStats}
}

// ParseTargets parses a comma-separated target list (as accepted by
// eclc's -target flag), ignoring empty items and deduplicating
// repeats (first occurrence wins the position).
func ParseTargets(s string) ([]Target, error) {
	var out []Target
	seen := map[Target]bool{}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		t := Target(item)
		switch t {
		case TargetEsterel, TargetC, TargetGo, TargetGlue,
			TargetDot, TargetVerilog, TargetVHDL, TargetStats:
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		default:
			return nil, fmt.Errorf("unknown target %q", item)
		}
	}
	return out, nil
}

// Filename returns the conventional output file name for a target
// applied to a module ("" for stats, which goes to the console).
func (t Target) Filename(module string) string {
	switch t {
	case TargetEsterel:
		return module + ".strl"
	case TargetC:
		return module + ".c"
	case TargetGo:
		return module + "_gen.go"
	case TargetGlue:
		return module + "_glue.h"
	case TargetDot:
		return module + ".dot"
	case TargetVerilog:
		return module + ".v"
	case TargetVHDL:
		return module + ".vhd"
	}
	return ""
}

// emit renders one artifact from a compiled design.
func emit(d *core.Design, t Target, goPkg string) (string, error) {
	switch t {
	case TargetEsterel:
		return d.EsterelText(), nil
	case TargetC:
		return d.CText(), nil
	case TargetGo:
		if goPkg == "" {
			goPkg = d.Machine.Name
		}
		return d.GoText(goPkg)
	case TargetGlue:
		return d.GlueText(), nil
	case TargetDot:
		return d.DotText(), nil
	case TargetVerilog:
		return d.VerilogText()
	case TargetVHDL:
		return d.VHDLText()
	case TargetStats:
		return FormatStats(d), nil
	}
	return "", fmt.Errorf("unknown target %q", t)
}

// FormatStats renders the design's size metrics in eclc's console
// layout.
func FormatStats(d *core.Design) string {
	st := d.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (policy %s):\n", d.Machine.Name, d.Lowered.Policy)
	fmt.Fprintf(&b, "  kernel nodes:   %d (pauses %d, emits %d, pars %d, aborts %d)\n",
		st.KernelStats.Nodes, st.KernelStats.Pauses, st.KernelStats.Emits,
		st.KernelStats.Pars, st.KernelStats.Aborts)
	fmt.Fprintf(&b, "  data functions: %d\n", st.DataFuncs)
	fmt.Fprintf(&b, "  EFSM:           %d states, %d transitions, %d tree nodes\n",
		st.EFSM.States, st.EFSM.Leaves, st.EFSM.TreeNodes)
	fmt.Fprintf(&b, "  image estimate: %d code bytes, %d data bytes (MIPS R3000)\n",
		st.Image.CodeBytes, st.Image.DataBytes)
	return b.String()
}
