package driver

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// Target names one artifact the driver can emit for a compiled module.
type Target string

// Artifact targets, mirroring the paper's outputs: the reactive part
// as Esterel, software synthesis in C or Go, the C glue header,
// Graphviz DOT of the EFSM, hardware synthesis to Verilog or VHDL, and
// a human-readable stats summary.
const (
	TargetEsterel Target = "esterel"
	TargetC       Target = "c"
	TargetGo      Target = "go"
	TargetGlue    Target = "glue"
	TargetDot     Target = "dot"
	TargetTable   Target = "table"
	TargetVerilog Target = "verilog"
	TargetVHDL    Target = "vhdl"
	TargetStats   Target = "stats"
)

// AllTargets lists every target the driver knows, in a stable order.
func AllTargets() []Target {
	return []Target{TargetEsterel, TargetC, TargetGo, TargetGlue,
		TargetDot, TargetTable, TargetVerilog, TargetVHDL, TargetStats}
}

// ParseTargets parses a comma-separated target list (as accepted by
// eclc's -target flag), ignoring empty items and deduplicating
// repeats (first occurrence wins the position).
func ParseTargets(s string) ([]Target, error) {
	var out []Target
	seen := map[Target]bool{}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		t := Target(item)
		switch t {
		case TargetEsterel, TargetC, TargetGo, TargetGlue,
			TargetDot, TargetTable, TargetVerilog, TargetVHDL, TargetStats:
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		default:
			return nil, fmt.Errorf("unknown target %q", item)
		}
	}
	return out, nil
}

// Filename returns the conventional output file name for a target
// applied to a module ("" for stats, which goes to the console).
func (t Target) Filename(module string) string {
	switch t {
	case TargetEsterel:
		return module + ".strl"
	case TargetC:
		return module + ".c"
	case TargetGo:
		return module + "_gen.go"
	case TargetGlue:
		return module + "_glue.h"
	case TargetDot:
		return module + ".dot"
	case TargetTable:
		return module + ".efsmtab"
	case TargetVerilog:
		return module + ".v"
	case TargetVHDL:
		return module + ".vhd"
	}
	return ""
}

// emit renders one artifact from a compiled design (the lazy path for
// targets requested after the design's pipeline walk already ran).
func emit(d *core.Design, t Target, goPkg string) (string, error) {
	ph, ok := pipeline.EmitPhase(string(t))
	if !ok {
		return "", fmt.Errorf("unknown target %q", t)
	}
	return pipeline.Emit(d, ph, goPkg)
}

// FormatStats renders the design's size metrics in eclc's console
// layout.
func FormatStats(d *core.Design) string { return pipeline.FormatStats(d) }
