package driver

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/cache/remote"
	"repro/internal/paperex"
)

// startRemote spins up an in-process eclcached: the protocol server
// over its own on-disk store.
func startRemote(t *testing.T) string {
	t.Helper()
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(remote.NewServer(store))
	t.Cleanup(srv.Close)
	return srv.URL
}

// remoteDriver builds a three-tier driver: fresh memory, an empty
// local disk store, and a client on the shared server.
func remoteDriver(t *testing.T, url string) *Driver {
	t.Helper()
	disk, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rc, err := remote.Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rc.Close)
	return &Driver{Disk: disk, Remote: rc}
}

// exampleRequests expands every module of every shipped example, the
// same corpus the CI dogfood step compiles.
func exampleRequests(t *testing.T) []Request {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.ecl"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example corpus: %v", err)
	}
	var reqs []Request
	for _, p := range paths {
		seed := Request{Path: p, Targets: []Target{TargetEsterel, TargetC, TargetGlue, TargetStats}}
		expanded, err := ExpandModules(seed)
		if err != nil {
			t.Fatalf("expand %s: %v", p, err)
		}
		reqs = append(reqs, expanded...)
	}
	return reqs
}

// TestRemoteCacheServesSecondMachine is the PR's acceptance criterion:
// machine A compiles the examples once and uploads to the shared tier;
// machine B (empty memory, empty local disk) must then be served >=90%
// of its requests from the remote tier without compiling anything, and
// get byte-identical artifacts.
func TestRemoteCacheServesSecondMachine(t *testing.T) {
	url := startRemote(t)
	reqs := exampleRequests(t)

	// Machine A: cold fleet, everything compiles and uploads.
	dA := remoteDriver(t, url)
	resA, err := dA.Build(context.Background(), reqs)
	if err != nil {
		t.Fatalf("machine A build: %v", err)
	}
	dA.Remote.Flush() // uploads are async; B must see a populated server
	if up := dA.Remote.Stats().Uploads; up == 0 {
		t.Fatal("machine A uploaded nothing to the shared tier")
	}

	// Machine B: a different machine — nothing local, warm remote.
	dB := remoteDriver(t, url)
	resB, err := dB.Build(context.Background(), reqs)
	if err != nil {
		t.Fatalf("machine B build: %v", err)
	}

	cs := dB.CacheStats()
	if cs.Misses != 0 {
		t.Fatalf("machine B compiled %d designs; a populated remote must serve them all", cs.Misses)
	}
	probes := cs.RemoteHits + cs.RemoteMisses
	if probes == 0 {
		t.Fatal("machine B never probed the remote tier")
	}
	if rate := float64(cs.RemoteHits) / float64(probes); rate < 0.9 {
		t.Fatalf("remote hit rate %.0f%% (%d/%d), want >= 90%%", 100*rate, cs.RemoteHits, probes)
	}

	for i := range resB {
		if !resB[i].Cached {
			t.Fatalf("request %d (%s:%s) was not served from cache", i, resB[i].Path, resB[i].Module)
		}
		if !reflect.DeepEqual(resA[i].Artifacts, resB[i].Artifacts) {
			t.Fatalf("request %d (%s:%s): remote-served artifacts differ from the cold build",
				i, resB[i].Path, resB[i].Module)
		}
	}

	// Read-through: B's local disk tier was populated, so a third
	// driver on machine B serves from disk without touching the
	// network.
	dB2 := &Driver{Disk: dB.Disk}
	resB2, err := dB2.Build(context.Background(), reqs)
	if err != nil {
		t.Fatalf("machine B rebuild: %v", err)
	}
	for i := range resB2 {
		if !resB2[i].DiskCached {
			t.Fatalf("request %d (%s:%s) not served from the read-through local store",
				i, resB2[i].Path, resB2[i].Module)
		}
	}
}

// TestRemoteCacheMissCompilesAndUploads: an empty server costs nothing
// but misses; the build compiles locally and the fresh artifacts land
// on the server for the next machine.
func TestRemoteCacheMissCompilesAndUploads(t *testing.T) {
	url := startRemote(t)
	d := remoteDriver(t, url)
	req := Request{
		Path: "stack.ecl", Source: paperex.Stack, Module: "toplevel",
		Targets: []Target{TargetEsterel, TargetC},
	}
	res := d.BuildOne(req)
	if res.Failed() || res.Cached {
		t.Fatalf("cold build: err=%v cached=%t", res.Err, res.Cached)
	}
	cs := d.CacheStats()
	if cs.RemoteMisses == 0 {
		t.Fatal("cold build never probed the remote tier")
	}
	d.Remote.Flush()
	if d.Remote.Stats().Uploads == 0 {
		t.Fatal("cold build did not upload its artifacts")
	}

	// A second machine is now served remotely.
	d2 := remoteDriver(t, url)
	res2 := d2.BuildOne(req)
	if res2.Failed() || !res2.RemoteCached {
		t.Fatalf("warm build: err=%v remoteCached=%t", res2.Err, res2.RemoteCached)
	}
	if res2.Artifacts[TargetC] != res.Artifacts[TargetC] {
		t.Fatal("remote-served artifact differs from the compiled one")
	}
}

// TestRemoteCacheDeadServerDegrades: a driver pointed at a dead server
// still builds everything — the remote tier can never fail a build.
func TestRemoteCacheDeadServerDegrades(t *testing.T) {
	srv := httptest.NewServer(nil)
	url := srv.URL
	srv.Close()
	d := remoteDriver(t, url)
	res := d.BuildOne(Request{
		Path: "abro.ecl", Source: paperex.ABRO, Module: "abro",
		Targets: []Target{TargetEsterel},
	})
	if res.Failed() {
		t.Fatalf("build failed against a dead remote: %v", res.Err)
	}
	if res.Artifacts[TargetEsterel] == "" {
		t.Fatal("no artifact produced")
	}
}

// TestRemoteCacheRespectsNoCache: NoCache must keep the driver off the
// network entirely.
func TestRemoteCacheRespectsNoCache(t *testing.T) {
	url := startRemote(t)
	d := remoteDriver(t, url)
	d.NoCache = true
	res := d.BuildOne(Request{
		Path: "abro.ecl", Source: paperex.ABRO, Module: "abro",
		Targets: []Target{TargetEsterel},
	})
	if res.Failed() || res.Cached {
		t.Fatalf("NoCache build: err=%v cached=%t", res.Err, res.Cached)
	}
	d.Remote.Flush()
	st := d.Remote.Stats()
	if st.Hits+st.Misses+st.Uploads != 0 {
		t.Fatalf("NoCache build touched the remote tier: %+v", st)
	}
}
