package driver

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/paperex"
)

func diskDriver(t *testing.T, dir string) *Driver {
	t.Helper()
	store, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return &Driver{Disk: store}
}

// TestDiskCacheServesSecondProcess is the tentpole contract: a fresh
// Driver (simulating a new process) over a warm store serves artifact
// requests from disk without compiling, byte-identical to the cold
// build, including the decoded stats.
func TestDiskCacheServesSecondProcess(t *testing.T) {
	dir := t.TempDir()
	req := Request{
		Path: "stack.ecl", Source: paperex.Stack, Module: "toplevel",
		Targets: []Target{TargetEsterel, TargetC, TargetGlue, TargetStats},
	}

	cold := diskDriver(t, dir).BuildOne(req)
	if cold.Failed() || cold.DiskCached {
		t.Fatalf("cold build: err=%v diskCached=%t", cold.Err, cold.DiskCached)
	}

	warmDriver := diskDriver(t, dir)
	warm := warmDriver.BuildOne(req)
	if warm.Failed() {
		t.Fatalf("warm build: %v", warm.Err)
	}
	if !warm.Cached || !warm.DiskCached {
		t.Fatalf("warm build not disk-cached: cached=%t diskCached=%t", warm.Cached, warm.DiskCached)
	}
	if warm.Module != "toplevel" {
		t.Errorf("warm module = %q", warm.Module)
	}
	if warm.Design != nil {
		t.Error("artifact-only disk hit must not fabricate a Design")
	}
	for _, target := range req.Targets {
		if warm.Artifacts[target] != cold.Artifacts[target] {
			t.Errorf("%s artifact differs across the process boundary", target)
		}
	}
	if warm.Stats == nil || warm.Stats.EFSM.States != cold.Stats.EFSM.States {
		t.Errorf("disk-cached stats = %+v, want %+v", warm.Stats, cold.Stats)
	}
	cs := warmDriver.CacheStats()
	if cs.DiskHits != 1 || cs.Misses != 0 {
		t.Errorf("warm stats = %+v, want 1 disk hit and no compiles", cs)
	}

	// A third request in the same process replays from memory: no
	// second disk probe.
	again := warmDriver.BuildOne(req)
	if !again.Cached || again.Failed() {
		t.Fatalf("replay: cached=%t err=%v", again.Cached, again.Err)
	}
	cs = warmDriver.CacheStats()
	if cs.DiskHits != 1 || cs.Hits != 1 {
		t.Errorf("replay stats = %+v, want memory hit without a new disk probe", cs)
	}
}

// TestDiskCacheResolvesDefaultModule checks a warm hit still resolves
// the "last module in file" convention from the manifest.
func TestDiskCacheResolvesDefaultModule(t *testing.T) {
	dir := t.TempDir()
	req := Request{Path: "buffer.ecl", Source: paperex.Buffer, Targets: []Target{TargetC}}
	if res := diskDriver(t, dir).BuildOne(req); res.Failed() {
		t.Fatal(res.Err)
	}
	warm := diskDriver(t, dir).BuildOne(req)
	if !warm.DiskCached || warm.Module != "bufferctl" {
		t.Fatalf("warm: diskCached=%t module=%q", warm.DiskCached, warm.Module)
	}
}

// TestDiskCacheSkippedWhenDesignNeeded: a request with no targets
// needs the compiled Design, so it must compile even over a warm
// store — and must not count disk traffic.
func TestDiskCacheSkippedWhenDesignNeeded(t *testing.T) {
	dir := t.TempDir()
	if res := diskDriver(t, dir).BuildOne(Request{Path: "abro.ecl", Source: paperex.ABRO,
		Targets: []Target{TargetC}}); res.Failed() {
		t.Fatal(res.Err)
	}
	d := diskDriver(t, dir)
	res := d.BuildOne(Request{Path: "abro.ecl", Source: paperex.ABRO})
	if res.Failed() || res.Design == nil {
		t.Fatalf("simulation build: err=%v design=%v", res.Err, res.Design)
	}
	if res.DiskCached {
		t.Error("no-target build cannot be served from disk")
	}
	cs := d.CacheStats()
	if cs.DiskHits != 0 || cs.DiskMisses != 0 {
		t.Errorf("no-target build touched disk: %+v", cs)
	}
}

// TestDiskCacheMissOnDifferentOptions: the content hash covers
// pipeline options, so an option change over a warm store recompiles.
func TestDiskCacheMissOnDifferentOptions(t *testing.T) {
	dir := t.TempDir()
	req := Request{Path: "abro.ecl", Source: paperex.ABRO, Targets: []Target{TargetC}}
	if res := diskDriver(t, dir).BuildOne(req); res.Failed() {
		t.Fatal(res.Err)
	}
	min := req
	min.Options.Minimize = true
	d := diskDriver(t, dir)
	res := d.BuildOne(min)
	if res.Failed() {
		t.Fatal(res.Err)
	}
	if res.DiskCached {
		t.Error("minimized build served from unminimized cache entry")
	}
	if cs := d.CacheStats(); cs.DiskMisses != 1 {
		t.Errorf("want 1 disk miss, got %+v", cs)
	}
}

// TestDiskCacheDisabledByNoCache: NoCache turns off both tiers.
func TestDiskCacheDisabledByNoCache(t *testing.T) {
	dir := t.TempDir()
	req := Request{Path: "abro.ecl", Source: paperex.ABRO, Targets: []Target{TargetC}}
	if res := diskDriver(t, dir).BuildOne(req); res.Failed() {
		t.Fatal(res.Err)
	}
	d := diskDriver(t, dir)
	d.NoCache = true
	res := d.BuildOne(req)
	if res.Failed() || res.Cached || res.DiskCached {
		t.Fatalf("NoCache build: err=%v cached=%t diskCached=%t", res.Err, res.Cached, res.DiskCached)
	}
	if cs := d.CacheStats(); cs.DiskHits != 0 || cs.DiskMisses != 0 {
		t.Errorf("NoCache build touched disk: %+v", cs)
	}
}

// TestDiskCacheGoPackageKeying: the same design emitted for two Go
// package names yields distinct cached artifacts.
func TestDiskCacheGoPackageKeying(t *testing.T) {
	dir := t.TempDir()
	base := Request{Path: "abro.ecl", Source: paperex.ABRO, Targets: []Target{TargetGo}}
	pkga, pkgb := base, base
	pkga.GoPackage = "alpha"
	pkgb.GoPackage = "beta"
	d := diskDriver(t, dir)
	ra, rb := d.BuildOne(pkga), d.BuildOne(pkgb)
	if ra.Failed() || rb.Failed() {
		t.Fatal(ra.Err, rb.Err)
	}
	d2 := diskDriver(t, dir)
	wa, wb := d2.BuildOne(pkga), d2.BuildOne(pkgb)
	if !wa.DiskCached || !wb.DiskCached {
		t.Fatalf("warm: diskCached=%t/%t", wa.DiskCached, wb.DiskCached)
	}
	if wa.Artifacts[TargetGo] != ra.Artifacts[TargetGo] || wb.Artifacts[TargetGo] != rb.Artifacts[TargetGo] {
		t.Error("Go artifacts differ across the process boundary")
	}
	if wa.Artifacts[TargetGo] == wb.Artifacts[TargetGo] {
		t.Error("distinct Go packages shared one cached artifact")
	}
}
