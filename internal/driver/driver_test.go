package driver

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/paperex"
	"repro/internal/pipeline"
)

func buildCtx() context.Context { return context.Background() }

func TestBuildSingleAllSoftwareTargets(t *testing.T) {
	d := New(0)
	res := d.BuildOne(Request{
		Path:    "abro.ecl",
		Source:  paperex.ABRO,
		Targets: []Target{TargetEsterel, TargetC, TargetGo, TargetGlue, TargetDot, TargetTable, TargetStats},
	})
	if res.Failed() {
		t.Fatalf("build failed: %v", res.Err)
	}
	if res.Module != "abro" {
		t.Fatalf("module = %q, want abro", res.Module)
	}
	checks := map[Target]string{
		TargetEsterel: "module abro:",
		TargetC:       "abro_react",
		TargetGo:      "package abro",
		TargetDot:     "digraph",
		TargetTable:   "table abro: states=",
		TargetStats:   "EFSM:",
	}
	for target, want := range checks {
		if got := res.Artifacts[target]; !strings.Contains(got, want) {
			t.Errorf("%s artifact missing %q:\n%s", target, want, got)
		}
	}
	if res.Stats == nil || res.Stats.EFSM.States == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
	if res.Design == nil {
		t.Error("design not exposed")
	}
}

func TestBuildDefaultsToLastModule(t *testing.T) {
	var d Driver // zero value is usable
	res := d.BuildOne(Request{Path: "stack.ecl", Source: paperex.Stack})
	if res.Failed() {
		t.Fatalf("build failed: %v", res.Err)
	}
	if res.Module != "toplevel" {
		t.Errorf("module = %q, want toplevel (last in file)", res.Module)
	}
}

func TestBuildHardwareTargets(t *testing.T) {
	d := New(2)
	res := d.BuildOne(Request{
		Path:    "abro.ecl",
		Source:  paperex.ABRO,
		Targets: []Target{TargetVerilog, TargetVHDL},
	})
	if res.Failed() {
		t.Fatalf("build failed: %v", res.Err)
	}
	if !strings.Contains(res.Artifacts[TargetVerilog], "module abro") {
		t.Error("verilog artifact wrong")
	}
	if !strings.Contains(res.Artifacts[TargetVHDL], "entity abro") {
		t.Error("vhdl artifact wrong")
	}
}

func TestBuildBatchConcurrentMatchesSequential(t *testing.T) {
	reqs, err := ExpandModules(Request{
		Path:    "stack.ecl",
		Source:  paperex.Stack,
		Targets: []Target{TargetEsterel, TargetC},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 4 {
		t.Fatalf("stack expands to %d requests, want 4", len(reqs))
	}
	more, err := ExpandModules(Request{
		Path:    "buffer.ecl",
		Source:  paperex.Buffer,
		Targets: []Target{TargetEsterel, TargetC},
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs = append(reqs, more...)

	seq, err := New(1).Build(buildCtx(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := New(8).Build(buildCtx(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if seq[i].Module != conc[i].Module {
			t.Errorf("request %d: module %q vs %q", i, seq[i].Module, conc[i].Module)
		}
		for _, target := range reqs[i].Targets {
			if seq[i].Artifacts[target] != conc[i].Artifacts[target] {
				t.Errorf("request %d: %s artifact differs between sequential and concurrent build",
					i, target)
			}
		}
	}
}

func TestCacheHitsOnRebuild(t *testing.T) {
	d := New(4)
	req := Request{Path: "abro.ecl", Source: paperex.ABRO, Targets: []Target{TargetC}}

	first := d.BuildOne(req)
	if first.Failed() || first.Cached {
		t.Fatalf("first build: err=%v cached=%t", first.Err, first.Cached)
	}
	second := d.BuildOne(req)
	if second.Failed() || !second.Cached {
		t.Fatalf("second build: err=%v cached=%t", second.Err, second.Cached)
	}
	if first.Artifacts[TargetC] != second.Artifacts[TargetC] {
		t.Error("cached artifact differs")
	}
	cs := d.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/1", cs.Hits, cs.Misses)
	}

	// A different module of the same source is a distinct design.
	third := d.BuildOne(Request{Path: "abro.ecl", Source: paperex.ABRO, Module: "abro"})
	if third.Failed() || third.Cached {
		t.Fatalf("explicit-module build: err=%v cached=%t", third.Err, third.Cached)
	}
}

func TestCacheIsPathAware(t *testing.T) {
	// Identical source under two paths must not share an entry:
	// diagnostics and AST positions carry the file name.
	d := New(0)
	bad := "module m ("
	a := d.BuildOne(Request{Path: "a.ecl", Source: bad})
	b := d.BuildOne(Request{Path: "b.ecl", Source: bad})
	if !a.Failed() || !b.Failed() {
		t.Fatal("want both to fail")
	}
	if b.Cached {
		t.Error("b.ecl wrongly served from a.ecl's cache entry")
	}
	if got := b.Diags[0].File; got != "b.ecl" {
		t.Errorf("b.ecl diagnostic names file %q", got)
	}
	if got := b.Diags[0].Pos; !strings.HasPrefix(got, "b.ecl:") {
		t.Errorf("b.ecl diagnostic position %q", got)
	}
}

func TestNoCacheRecompiles(t *testing.T) {
	d := &Driver{NoCache: true}
	req := Request{Path: "abro.ecl", Source: paperex.ABRO}
	if res := d.BuildOne(req); res.Failed() || res.Cached {
		t.Fatalf("first: err=%v cached=%t", res.Err, res.Cached)
	}
	if res := d.BuildOne(req); res.Failed() || res.Cached {
		t.Fatalf("second: err=%v cached=%t", res.Err, res.Cached)
	}
}

func TestParseErrorDiagnostics(t *testing.T) {
	d := New(0)
	res := d.BuildOne(Request{
		Path:   "bad.ecl",
		Source: "module m (input pure a, output pure b) { await (; }",
	})
	if !res.Failed() {
		t.Fatal("want parse failure")
	}
	if len(res.Diags) == 0 {
		t.Fatal("no structured diagnostics")
	}
	for _, diag := range res.Diags {
		if diag.Phase != PhaseParse {
			t.Errorf("phase = %s, want parse", diag.Phase)
		}
		if diag.File != "bad.ecl" {
			t.Errorf("file = %q", diag.File)
		}
	}
	if !strings.Contains(res.Diags[0].String(), "[parse]") {
		t.Errorf("diag string missing phase: %s", res.Diags[0])
	}
}

func TestUnknownModuleDiagnostics(t *testing.T) {
	d := New(0)
	res := d.BuildOne(Request{Path: "abro.ecl", Source: paperex.ABRO, Module: "nosuch"})
	if !res.Failed() {
		t.Fatal("want failure for unknown module")
	}
	if len(res.Diags) == 0 || res.Diags[0].Phase != PhaseLower {
		t.Fatalf("diags = %+v, want lower-phase diagnostic", res.Diags)
	}
	if res.Diags[0].Module != "nosuch" {
		t.Errorf("module = %q", res.Diags[0].Module)
	}
}

func TestCompileBoundDiagnostics(t *testing.T) {
	d := New(0)
	res := d.BuildOne(Request{
		Path:    "stack.ecl",
		Source:  paperex.Stack,
		Options: core.Options{Compile: compile.Options{MaxStates: 1}},
	})
	if !res.Failed() {
		t.Fatal("want failure for MaxStates=1")
	}
	if res.Diags[0].Phase != PhaseCompile {
		t.Errorf("phase = %s, want compile", res.Diags[0].Phase)
	}
}

func TestEmitErrorDiagnostics(t *testing.T) {
	// The stack has a data part, so hardware synthesis must fail in
	// the emit phase.
	d := New(0)
	res := d.BuildOne(Request{
		Path:    "stack.ecl",
		Source:  paperex.Stack,
		Targets: []Target{TargetVerilog},
	})
	if !res.Failed() {
		t.Fatal("want hardware-synthesis failure")
	}
	last := res.Diags[len(res.Diags)-1]
	if last.Phase != PhaseEmit {
		t.Errorf("phase = %s, want emit", last.Phase)
	}
}

func TestMissingFileDiagnostics(t *testing.T) {
	d := New(0)
	res := d.BuildOne(Request{Path: "does/not/exist.ecl"})
	if !res.Failed() {
		t.Fatal("want read failure")
	}
	if res.Diags[0].Phase != PhaseRead {
		t.Errorf("phase = %s, want read", res.Diags[0].Phase)
	}
}

func TestBuildAggregatesErrors(t *testing.T) {
	d := New(4)
	results, err := d.Build(buildCtx(), []Request{
		{Path: "good.ecl", Source: paperex.ABRO},
		{Path: "bad.ecl", Source: "module ???"},
	})
	if err == nil {
		t.Fatal("want aggregated error")
	}
	if results[0].Failed() {
		t.Errorf("good request failed: %v", results[0].Err)
	}
	if !results[1].Failed() {
		t.Error("bad request did not fail")
	}
}

func TestBuildCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// With a pre-cancelled context nothing may be dispatched, even
	// when worker slots are free: every request must come back failed.
	d := New(8)
	results, err := d.Build(ctx, []Request{
		{Path: "a.ecl", Source: paperex.ABRO},
		{Path: "b.ecl", Source: paperex.ABRO},
	})
	if err == nil {
		t.Fatal("want error from cancelled context")
	}
	for i, r := range results {
		if !r.Failed() {
			t.Errorf("request %d compiled despite cancelled context", i)
		}
	}
}

func TestParseTargets(t *testing.T) {
	targets, err := ParseTargets("esterel, c,glue ,stats,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Target{TargetEsterel, TargetC, TargetGlue, TargetStats}
	if len(targets) != len(want) {
		t.Fatalf("targets = %v", targets)
	}
	for i := range want {
		if targets[i] != want[i] {
			t.Errorf("target %d = %s, want %s", i, targets[i], want[i])
		}
	}
	if _, err := ParseTargets("esterel,bogus"); err == nil {
		t.Error("want error for unknown target")
	}
	// Repeats dedup (a doubled -target must not emit twice).
	if dup, err := ParseTargets("c,c,esterel,c"); err != nil || len(dup) != 2 {
		t.Errorf("dedup: targets = %v, err = %v", dup, err)
	}
	if len(AllTargets()) != 9 {
		t.Errorf("AllTargets = %v", AllTargets())
	}
}

func TestTargetFilenames(t *testing.T) {
	cases := map[Target]string{
		TargetEsterel: "m.strl", TargetC: "m.c", TargetGo: "m_gen.go",
		TargetGlue: "m_glue.h", TargetDot: "m.dot", TargetTable: "m.efsmtab",
		TargetVerilog: "m.v", TargetVHDL: "m.vhd", TargetStats: "",
	}
	for target, want := range cases {
		if got := target.Filename("m"); got != want {
			t.Errorf("%s.Filename = %q, want %q", target, got, want)
		}
	}
}

// vetSource carries exactly one analyzer finding (ECL001: unused local
// signal).
const vetSource = `
module m (input pure i, output pure o)
{
    signal pure unused_sig;
    while (1) {
        await (i);
        emit (o);
    }
}
`

func analyzeStatus(t *testing.T, res *Result) pipeline.Status {
	t.Helper()
	for _, pr := range res.Phases {
		if pr.Phase == pipeline.PhaseAnalyze {
			return pr.Status
		}
	}
	t.Fatalf("analyze phase not walked (phases: %+v)", res.Phases)
	return ""
}

func TestDriverAnalyze(t *testing.T) {
	d := New(1)
	req := Request{Path: "vet.ecl", Source: vetSource, Analyze: true}
	res := d.BuildOne(req)
	if res.Failed() {
		t.Fatalf("build: %v", res.Err)
	}
	if len(res.Findings) != 1 || res.Findings[0].Rule != "ECL001" {
		t.Fatalf("findings = %+v, want one ECL001", res.Findings)
	}
	if st := analyzeStatus(t, &res); st != pipeline.StatusRebuilt {
		t.Errorf("analyze = %s, want rebuilt", st)
	}

	// Identical request on the same driver: the design entry is
	// memoized and so are its findings.
	again := d.BuildOne(req)
	if !again.Cached || len(again.Findings) != 1 {
		t.Errorf("memoized = (cached=%t, %+v), want cached with findings", again.Cached, again.Findings)
	}
}

// TestDriverAnalyzeSkipsDesignTier: an analyze request must walk the
// phase graph even when the v1 design cache could serve the artifacts,
// so warm runs report the analyze phase's own disk-hit.
func TestDriverAnalyzeSkipsDesignTier(t *testing.T) {
	dir := t.TempDir()
	open := func() *Driver {
		store, err := cache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return &Driver{Workers: 1, Disk: store}
	}
	req := Request{Path: "vet.ecl", Source: vetSource, Targets: []Target{TargetC}, Analyze: true}

	cold := open().BuildOne(req)
	if cold.Failed() {
		t.Fatalf("cold: %v", cold.Err)
	}
	if st := analyzeStatus(t, &cold); st != pipeline.StatusRebuilt {
		t.Errorf("cold analyze = %s, want rebuilt", st)
	}

	warm := open().BuildOne(req)
	if warm.Failed() {
		t.Fatalf("warm: %v", warm.Err)
	}
	if st := analyzeStatus(t, &warm); st != pipeline.StatusDiskHit {
		t.Errorf("warm analyze = %s, want disk-hit", st)
	}
	if len(warm.Findings) != 1 || warm.Findings[0] != cold.Findings[0] {
		t.Errorf("warm findings = %+v, want %+v", warm.Findings, cold.Findings)
	}
	if warm.Artifacts[TargetC] != cold.Artifacts[TargetC] {
		t.Errorf("warm artifact differs from cold")
	}
}

// TestDriverAnalyzeLazyOnMemoizedEntry: a design compiled by an
// analyze-less request still serves a later analyze request (the rules
// run over the memoized design on demand).
func TestDriverAnalyzeLazyOnMemoizedEntry(t *testing.T) {
	d := New(1)
	plain := d.BuildOne(Request{Path: "vet.ecl", Source: vetSource})
	if plain.Failed() || plain.Findings != nil {
		t.Fatalf("plain = (%v, %+v), want success with nil findings", plain.Err, plain.Findings)
	}
	vet := d.BuildOne(Request{Path: "vet.ecl", Source: vetSource, Analyze: true})
	if vet.Failed() {
		t.Fatalf("vet: %v", vet.Err)
	}
	if len(vet.Findings) != 1 || vet.Findings[0].Rule != "ECL001" {
		t.Errorf("lazy findings = %+v, want one ECL001", vet.Findings)
	}
	if st := analyzeStatus(t, &vet); st != pipeline.StatusRebuilt {
		t.Errorf("lazy analyze = %s, want rebuilt", st)
	}
}
