// Package lower implements the ECL splitter and lowering: it turns an
// analyzed ECL module into an Esterel kernel module (internal/kernel)
// plus a set of extracted C data functions, following the paper's
// compilation scheme:
//
//   - reactive statements (await, emit, present, abort, par, loops that
//     halt) become kernel statements;
//   - data loops — loops that contain no halting statement and hence
//     would be instantaneous — are extracted as atomic C functions
//     called from the kernel;
//   - module instantiations are inlined, with per-instance renaming of
//     variables and local signals (recursion is rejected by sem).
//
// Two splitting policies are provided. MaximalReactive is the paper's
// current scheme ("translate as much of an ECL program as possible
// into Esterel"): only data loops are extracted, and all other data
// statements become kernel actions visible to EFSM case analysis.
// MinimalReactive is the paper's future-work scheme for legacy code:
// every maximal run of consecutive pure-data statements is extracted,
// keeping the kernel minimal.
package lower

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ctypes"
	"repro/internal/kernel"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/token"
)

// Policy selects the splitting scheme.
type Policy int

// Splitting policies.
const (
	// MaximalReactive maps everything except data loops to the kernel
	// (the paper's implemented scheme).
	MaximalReactive Policy = iota
	// MinimalReactive extracts every pure-data run as a C function
	// (the paper's Section 6 future-work scheme).
	MinimalReactive
)

// String names the policy.
func (p Policy) String() string {
	if p == MinimalReactive {
		return "minimal"
	}
	return "maximal"
}

// Result bundles the outputs of lowering one top-level module.
type Result struct {
	Module *kernel.Module
	Info   *sem.Info
	Policy Policy
}

// Lower compiles the named module (inlining its instantiations) into a
// kernel module under the given policy.
//
// Lower never mutates the given Info: the resolution/type entries it
// records for synthesized AST nodes (initializer assignments, switch
// scratch variables) land in a derived view (sem.Info.Derive), which
// the Result and its kernel bindings carry. One analyzed Info can
// therefore be lowered concurrently for every module of a file — the
// contract the shared-front-end batch path and TestLowerPure rely on.
func Lower(info *sem.Info, name string, pol Policy, diags *source.DiagList) (*Result, error) {
	mi := info.Modules[name]
	if mi == nil {
		return nil, fmt.Errorf("module %q not found", name)
	}
	info = info.Derive()
	lw := &lowerer{
		info:   info,
		policy: pol,
		diags:  diags,
		mod:    &kernel.Module{Name: name},
	}
	root := &kernel.Binding{
		Info:  info,
		Vars:  make(map[*sem.VarInfo]*kernel.Var),
		Sigs:  make(map[*sem.SignalInfo]*kernel.Signal),
		Label: name,
	}
	// Interface signals of the root module face the environment.
	for _, sp := range mi.Params {
		sig := &kernel.Signal{Name: sp.Name, Pure: sp.Pure, Type: sp.ValueType}
		if sp.Dir == ast.In {
			sig.Class = kernel.Input
			lw.mod.Inputs = append(lw.mod.Inputs, sig)
		} else {
			sig.Class = kernel.Output
			lw.mod.Outputs = append(lw.mod.Outputs, sig)
		}
		root.Sigs[sp] = sig
	}
	body := lw.lowerInstance(mi, root)
	lw.mod.Body = body
	lw.mod.Number()
	if err := lw.mod.Validate(); err != nil {
		return nil, err
	}
	if diags.HasErrors() {
		return nil, diags.Err()
	}
	return &Result{Module: lw.mod, Info: info, Policy: pol}, nil
}

type lowerer struct {
	info   *sem.Info
	policy Policy
	diags  *source.DiagList
	mod    *kernel.Module

	trapSeq int
	funcSeq int
	varSeq  int
	instSeq int
}

// loopCtx tracks the targets for break and continue.
type loopCtx struct {
	brk  *kernel.Trap
	cont *kernel.Trap // nil inside switch
}

// instCtx is the per-instance lowering context.
type instCtx struct {
	b     *kernel.Binding
	mi    *sem.ModuleInfo
	loops []loopCtx
}

func (lw *lowerer) errorf(pos source.Pos, format string, args ...interface{}) {
	lw.diags.Errorf(pos, format, args...)
}

// lowerInstance lowers one module instance body. The binding must have
// all interface params mapped to signals already.
func (lw *lowerer) lowerInstance(mi *sem.ModuleInfo, b *kernel.Binding) kernel.Stmt {
	// Fresh variables for this instance.
	for _, vi := range mi.Vars {
		kv := &kernel.Var{Name: b.Label + "." + vi.Mangled, Type: vi.Type}
		b.Vars[vi] = kv
		lw.mod.Vars = append(lw.mod.Vars, kv)
	}
	cx := &instCtx{b: b, mi: mi}
	return lw.lowerBlock(cx, mi.Decl.Body.Stmts)
}

// ---------------------------------------------------------------------------
// Purity classification

// isData reports whether s is pure data: no reactive statements, no
// module instantiation, and no break/continue that would escape s.
func (lw *lowerer) isData(s ast.Stmt) bool { return lw.dataOK(s, 0) }

func (lw *lowerer) dataOK(s ast.Stmt, loopDepth int) bool {
	switch s := s.(type) {
	case nil, *ast.Empty, *ast.VarDecl:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.Call); ok && lw.info.IsInst[call] {
			return false
		}
		return true
	case *ast.Block:
		for _, st := range s.Stmts {
			if !lw.dataOK(st, loopDepth) {
				return false
			}
		}
		return true
	case *ast.If:
		return lw.dataOK(s.Then, loopDepth) && lw.dataOK(s.Else, loopDepth)
	case *ast.While:
		return lw.dataOK(s.Body, loopDepth+1)
	case *ast.DoWhile:
		return lw.dataOK(s.Body, loopDepth+1)
	case *ast.For:
		return lw.dataOK(s.Init, loopDepth) && lw.dataOK(s.Post, loopDepth) && lw.dataOK(s.Body, loopDepth+1)
	case *ast.Switch:
		for _, c := range s.Cases {
			for _, st := range c.Body {
				if !lw.dataOK(st, loopDepth+1) {
					return false
				}
			}
		}
		return true
	case *ast.Break, *ast.Continue:
		return loopDepth > 0
	case *ast.Return:
		return false
	default:
		// Await, Halt, Emit, Present, DoPreempt, Par, SignalDecl.
		return false
	}
}

func isLoopStmt(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.While, *ast.DoWhile, *ast.For:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Blocks and the splitter

// lowerBlock lowers a statement list, applying the splitting policy:
// pure-data runs become DataCalls (always for loops; for everything in
// the minimal policy), the rest lowers to kernel statements. A signal
// declaration scopes the remainder of the block.
func (lw *lowerer) lowerBlock(cx *instCtx, stmts []ast.Stmt) kernel.Stmt {
	var out []kernel.Stmt
	i := 0
	for i < len(stmts) {
		s := stmts[i]
		// Local signal: wrap the rest of the block in its scope.
		if sd, ok := s.(*ast.SignalDecl); ok {
			sig := lw.lowerSignalDecl(cx, sd)
			rest := lw.lowerBlock(cx, stmts[i+1:])
			out = append(out, &kernel.Local{Sig: sig, Body: rest})
			return seq(out)
		}
		if lw.policy == MinimalReactive && lw.isData(s) && !isTrivialData(s) {
			// Gather the maximal pure-data run.
			j := i
			for j < len(stmts) && lw.isData(stmts[j]) {
				if _, isSig := stmts[j].(*ast.SignalDecl); isSig {
					break
				}
				j++
			}
			out = append(out, lw.extractData(cx, stmts[i:j]))
			i = j
			continue
		}
		out = append(out, lw.lowerStmt(cx, s))
		i++
	}
	return seq(out)
}

// isTrivialData reports statements not worth extracting even under the
// minimal policy (declarations without initializers, empty statements).
func isTrivialData(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.Empty:
		return true
	case *ast.VarDecl:
		return s.Init == nil
	}
	return false
}

// extractData builds a DataFunc from a run of pure-data statements and
// returns the kernel call. Variable declarations with initializers are
// kept in the extracted body (dataexec scopes them).
func (lw *lowerer) extractData(cx *instCtx, run []ast.Stmt) kernel.Stmt {
	lw.funcSeq++
	f := &kernel.DataFunc{
		Name: fmt.Sprintf("%s_data%d", sanitize(cx.b.Label), lw.funcSeq),
		B:    cx.b,
		Body: run,
	}
	lw.mod.Funcs = append(lw.mod.Funcs, f)
	return &kernel.DataCall{F: f}
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '.' || c == '/' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}

func seq(list []kernel.Stmt) kernel.Stmt {
	switch len(list) {
	case 0:
		return &kernel.Nothing{}
	case 1:
		return list[0]
	}
	return &kernel.Seq{List: list}
}

// ---------------------------------------------------------------------------
// Statements

func (lw *lowerer) lowerStmt(cx *instCtx, s ast.Stmt) kernel.Stmt {
	switch s := s.(type) {
	case *ast.Block:
		return lw.lowerBlock(cx, s.Stmts)

	case *ast.Empty:
		return &kernel.Nothing{}

	case *ast.VarDecl:
		v := cx.b.Vars[lw.varInfoFor(cx, s)]
		if s.Init == nil || v == nil {
			return &kernel.Nothing{}
		}
		lhs := &ast.Ident{NamePos: s.Pos(), Name: s.Name}
		lw.info.SetUse(lhs, lw.varInfoFor(cx, s))
		return &kernel.Assign{
			LHS: kernel.Expr{B: cx.b, E: lhs},
			RHS: kernel.Expr{B: cx.b, E: s.Init},
		}

	case *ast.ExprStmt:
		return lw.lowerExprStmt(cx, s)

	case *ast.If:
		// A pure-data loop inside an arm still gets extracted by the
		// recursive lowering of the arm.
		return &kernel.IfData{
			Cond: kernel.Expr{B: cx.b, E: s.Cond},
			Then: lw.lowerStmt(cx, s.Then),
			Else: lw.lowerOptStmt(cx, s.Else),
		}

	case *ast.While:
		if lw.isData(s) {
			return lw.extractData(cx, []ast.Stmt{s})
		}
		return lw.lowerWhile(cx, s)

	case *ast.DoWhile:
		if lw.isData(s) {
			return lw.extractData(cx, []ast.Stmt{s})
		}
		return lw.lowerDoWhile(cx, s)

	case *ast.For:
		if lw.isData(s) {
			return lw.extractData(cx, []ast.Stmt{s})
		}
		return lw.lowerFor(cx, s)

	case *ast.Switch:
		if lw.isData(s) && lw.policy == MinimalReactive {
			return lw.extractData(cx, []ast.Stmt{s})
		}
		return lw.lowerSwitch(cx, s)

	case *ast.Break:
		if len(cx.loops) == 0 {
			lw.errorf(s.Pos(), "break outside loop")
			return &kernel.Nothing{}
		}
		return &kernel.Exit{Target: cx.loops[len(cx.loops)-1].brk}

	case *ast.Continue:
		for i := len(cx.loops) - 1; i >= 0; i-- {
			if cx.loops[i].cont != nil {
				return &kernel.Exit{Target: cx.loops[i].cont}
			}
		}
		lw.errorf(s.Pos(), "continue outside loop")
		return &kernel.Nothing{}

	case *ast.Emit:
		sig := lw.signalOf(cx, s.Signal)
		if sig == nil {
			return &kernel.Nothing{}
		}
		e := &kernel.Emit{Sig: sig}
		if s.Value != nil {
			e.Value = &kernel.Expr{B: cx.b, E: s.Value}
		}
		return e

	case *ast.Await:
		if s.Sig == nil {
			return &kernel.Pause{}
		}
		return &kernel.Await{Sig: lw.lowerSigExpr(cx, s.Sig)}

	case *ast.Halt:
		return &kernel.Halt{}

	case *ast.Present:
		return &kernel.Present{
			Sig:  lw.lowerSigExpr(cx, s.Sig),
			Then: lw.lowerStmt(cx, s.Then),
			Else: lw.lowerOptStmt(cx, s.Else),
		}

	case *ast.DoPreempt:
		body := lw.lowerStmt(cx, s.Body)
		sig := lw.lowerSigExpr(cx, s.Sig)
		if s.Kind == ast.Susp {
			return &kernel.Suspend{Body: body, Sig: sig}
		}
		return &kernel.Abort{
			Body:    body,
			Sig:     sig,
			Weak:    s.Kind == ast.Weak,
			Handler: lw.lowerOptStmt(cx, s.Handler),
		}

	case *ast.Par:
		p := &kernel.Par{}
		for _, b := range s.Branches {
			p.Branches = append(p.Branches, lw.lowerStmt(cx, b))
		}
		return p

	case *ast.SignalDecl:
		// A signal declaration as the last statement scopes nothing.
		sig := lw.lowerSignalDecl(cx, s)
		return &kernel.Local{Sig: sig, Body: &kernel.Nothing{}}

	case *ast.Return:
		lw.errorf(s.Pos(), "return in module body")
		return &kernel.Nothing{}
	}
	lw.errorf(s.Pos(), "cannot lower %T", s)
	return &kernel.Nothing{}
}

func (lw *lowerer) lowerOptStmt(cx *instCtx, s ast.Stmt) kernel.Stmt {
	if s == nil {
		return nil
	}
	return lw.lowerStmt(cx, s)
}

func (lw *lowerer) lowerSignalDecl(cx *instCtx, sd *ast.SignalDecl) *kernel.Signal {
	si := cx.mi.Signal(sd.Name)
	sig := &kernel.Signal{
		Name:  cx.b.Label + "." + sd.Name,
		Class: kernel.LocalSig,
		Pure:  sd.Pure,
	}
	if si != nil {
		sig.Type = si.ValueType
		cx.b.Sigs[si] = sig
	}
	lw.mod.Locals = append(lw.mod.Locals, sig)
	return sig
}

func (lw *lowerer) varInfoFor(cx *instCtx, d *ast.VarDecl) *sem.VarInfo {
	return lw.info.VarOf[d]
}

// signalOf resolves a signal identifier through sem.Uses and the
// instance binding.
func (lw *lowerer) signalOf(cx *instCtx, id *ast.Ident) *kernel.Signal {
	obj := lw.info.UseOf(id)
	si, ok := obj.(*sem.SignalInfo)
	if !ok {
		lw.errorf(id.Pos(), "%q does not resolve to a signal", id.Name)
		return nil
	}
	sig := cx.b.Sigs[si]
	if sig == nil {
		lw.errorf(id.Pos(), "internal: signal %q unbound in instance %s", id.Name, cx.b.Label)
	}
	return sig
}

func (lw *lowerer) lowerSigExpr(cx *instCtx, e ast.Expr) kernel.SigExpr {
	switch e := e.(type) {
	case *ast.Ident:
		sig := lw.signalOf(cx, e)
		if sig == nil {
			return &kernel.SigRef{Sig: &kernel.Signal{Name: "<error>", Pure: true}}
		}
		return &kernel.SigRef{Sig: sig}
	case *ast.Paren:
		return lw.lowerSigExpr(cx, e.X)
	case *ast.Unary:
		return &kernel.SigNot{X: lw.lowerSigExpr(cx, e.X)}
	case *ast.Binary:
		x := lw.lowerSigExpr(cx, e.X)
		y := lw.lowerSigExpr(cx, e.Y)
		if e.Op == token.AND {
			return &kernel.SigAnd{X: x, Y: y}
		}
		return &kernel.SigOr{X: x, Y: y}
	}
	lw.errorf(e.Pos(), "invalid signal expression")
	return &kernel.SigRef{Sig: &kernel.Signal{Name: "<error>", Pure: true}}
}

// ---------------------------------------------------------------------------
// Expression statements

func (lw *lowerer) lowerExprStmt(cx *instCtx, s *ast.ExprStmt) kernel.Stmt {
	if call, ok := s.X.(*ast.Call); ok && lw.info.IsInst[call] {
		return lw.inline(cx, call)
	}
	return lw.lowerExprAction(cx, s.X)
}

// lowerExprAction turns an expression with side effects into kernel
// data actions.
func (lw *lowerer) lowerExprAction(cx *instCtx, e ast.Expr) kernel.Stmt {
	switch e := e.(type) {
	case *ast.Binary:
		if e.Op == token.COMMA {
			return seq([]kernel.Stmt{
				lw.lowerExprAction(cx, e.X),
				lw.lowerExprAction(cx, e.Y),
			})
		}
	case *ast.Paren:
		return lw.lowerExprAction(cx, e.X)
	case *ast.Assign:
		if e.Op == token.ASSIGN {
			return &kernel.Assign{
				LHS: kernel.Expr{B: cx.b, E: e.LHS},
				RHS: kernel.Expr{B: cx.b, E: e.RHS},
			}
		}
	}
	return &kernel.Eval{X: kernel.Expr{B: cx.b, E: e}}
}

// ---------------------------------------------------------------------------
// Loops

func (lw *lowerer) newTrap(prefix string) *kernel.Trap {
	lw.trapSeq++
	return &kernel.Trap{Name: fmt.Sprintf("%s%d", prefix, lw.trapSeq)}
}

// condIsConstTrue reports whether a loop condition is a non-zero
// constant (while(1)).
func (lw *lowerer) condIsConstTrue(e ast.Expr) bool {
	if e == nil {
		return true
	}
	v, ok := lw.info.ConstEval(e)
	return ok && v != 0
}

func (lw *lowerer) lowerWhile(cx *instCtx, s *ast.While) kernel.Stmt {
	brk := lw.newTrap("brk")
	cont := lw.newTrap("cont")
	cx.loops = append(cx.loops, loopCtx{brk: brk, cont: cont})
	body := lw.lowerStmt(cx, s.Body)
	cx.loops = cx.loops[:len(cx.loops)-1]

	cont.Body = body
	var iter kernel.Stmt = cont
	if !lw.condIsConstTrue(s.Cond) {
		iter = &kernel.Seq{List: []kernel.Stmt{
			&kernel.IfData{
				Cond: kernel.Expr{B: cx.b, E: s.Cond},
				Then: nil,
				Else: &kernel.Exit{Target: brk},
			},
			cont,
		}}
	}
	brk.Body = &kernel.Loop{Body: iter}
	return brk
}

func (lw *lowerer) lowerDoWhile(cx *instCtx, s *ast.DoWhile) kernel.Stmt {
	brk := lw.newTrap("brk")
	cont := lw.newTrap("cont")
	cx.loops = append(cx.loops, loopCtx{brk: brk, cont: cont})
	body := lw.lowerStmt(cx, s.Body)
	cx.loops = cx.loops[:len(cx.loops)-1]

	cont.Body = body
	iter := &kernel.Seq{List: []kernel.Stmt{
		cont,
		&kernel.IfData{
			Cond: kernel.Expr{B: cx.b, E: s.Cond},
			Then: nil,
			Else: &kernel.Exit{Target: brk},
		},
	}}
	brk.Body = &kernel.Loop{Body: iter}
	return brk
}

func (lw *lowerer) lowerFor(cx *instCtx, s *ast.For) kernel.Stmt {
	brk := lw.newTrap("brk")
	cont := lw.newTrap("cont")

	var pre kernel.Stmt = &kernel.Nothing{}
	if s.Init != nil {
		pre = lw.lowerStmt(cx, s.Init)
	}

	cx.loops = append(cx.loops, loopCtx{brk: brk, cont: cont})
	body := lw.lowerStmt(cx, s.Body)
	cx.loops = cx.loops[:len(cx.loops)-1]
	cont.Body = body

	var post kernel.Stmt = &kernel.Nothing{}
	if s.Post != nil {
		post = lw.lowerStmt(cx, s.Post)
	}

	var iter []kernel.Stmt
	if !lw.condIsConstTrue(s.Cond) {
		iter = append(iter, &kernel.IfData{
			Cond: kernel.Expr{B: cx.b, E: s.Cond},
			Then: nil,
			Else: &kernel.Exit{Target: brk},
		})
	}
	iter = append(iter, cont, post)
	brk.Body = &kernel.Loop{Body: &kernel.Seq{List: iter}}
	return seq([]kernel.Stmt{pre, brk})
}

// ---------------------------------------------------------------------------
// Switch

func (lw *lowerer) lowerSwitch(cx *instCtx, s *ast.Switch) kernel.Stmt {
	// Reject fallthrough: every non-final case body must end in break.
	for ci, c := range s.Cases {
		if ci == len(s.Cases)-1 || len(c.Body) == 0 {
			continue
		}
		last := c.Body[len(c.Body)-1]
		if _, ok := last.(*ast.Break); !ok {
			lw.errorf(c.KwPos, "switch case must end with break (fallthrough into the next case is not supported in reactive context)")
		}
	}
	// Evaluate the tag once into a scratch variable.
	lw.varSeq++
	tagType := lw.info.TypeOf(s.Tag)
	if tagType == nil {
		tagType = ctypes.Int
	}
	tmp := &kernel.Var{Name: fmt.Sprintf("%s.swtag%d", cx.b.Label, lw.varSeq), Type: tagType}
	lw.mod.Vars = append(lw.mod.Vars, tmp)
	tmpInfo := &sem.VarInfo{Name: tmp.Name, Mangled: tmp.Name, Type: tagType}
	cx.b.Vars[tmpInfo] = tmp
	tagRef := &ast.Ident{NamePos: s.Pos(), Name: tmp.Name}
	lw.info.SetUse(tagRef, tmpInfo)
	lw.info.SetExprType(tagRef, tagType)

	brk := lw.newTrap("sw")
	cx.loops = append(cx.loops, loopCtx{brk: brk})

	// Build the if-chain from the last case backwards.
	var chain kernel.Stmt
	var defaultBody kernel.Stmt
	for _, c := range s.Cases {
		if c.Values == nil {
			var body []kernel.Stmt
			for _, st := range c.Body {
				body = append(body, lw.lowerStmt(cx, st))
			}
			defaultBody = seq(body)
		}
	}
	chain = defaultBody
	if chain == nil {
		chain = &kernel.Nothing{}
	}
	for i := len(s.Cases) - 1; i >= 0; i-- {
		c := s.Cases[i]
		if c.Values == nil {
			continue
		}
		var cond ast.Expr
		for _, v := range c.Values {
			eq := &ast.Binary{X: tagRef, Op: token.EQL, Y: v}
			lw.info.SetExprType(eq, ctypes.Int)
			if cond == nil {
				cond = eq
			} else {
				or := &ast.Binary{X: cond, Op: token.LOR, Y: eq}
				lw.info.SetExprType(or, ctypes.Int)
				cond = or
			}
		}
		var body []kernel.Stmt
		for _, st := range c.Body {
			body = append(body, lw.lowerStmt(cx, st))
		}
		chain = &kernel.IfData{
			Cond: kernel.Expr{B: cx.b, E: cond},
			Then: seq(body),
			Else: chain,
		}
	}
	cx.loops = cx.loops[:len(cx.loops)-1]

	brk.Body = chain
	return seq([]kernel.Stmt{
		&kernel.Assign{
			LHS: kernel.Expr{B: cx.b, E: tagRef},
			RHS: kernel.Expr{B: cx.b, E: s.Tag},
		},
		brk,
	})
}

// ---------------------------------------------------------------------------
// Module instantiation (inlining)

func (lw *lowerer) inline(cx *instCtx, call *ast.Call) kernel.Stmt {
	ref, _ := lw.info.UseOf(call.Fun).(*sem.ModuleRef)
	if ref == nil {
		lw.errorf(call.Pos(), "internal: unresolved module instantiation")
		return &kernel.Nothing{}
	}
	callee := ref.Module
	if len(call.Args) != len(callee.Params) {
		return &kernel.Nothing{} // sem reported the arity error
	}
	lw.instSeq++
	child := &kernel.Binding{
		Info:  lw.info,
		Vars:  make(map[*sem.VarInfo]*kernel.Var),
		Sigs:  make(map[*sem.SignalInfo]*kernel.Signal),
		Label: fmt.Sprintf("%s.%s%d", cx.b.Label, callee.Name, lw.instSeq),
	}
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue
		}
		si, _ := lw.info.UseOf(id).(*sem.SignalInfo)
		if si == nil {
			continue
		}
		actual := cx.b.Sigs[si]
		if actual == nil {
			lw.errorf(arg.Pos(), "internal: unbound signal argument %q", id.Name)
			continue
		}
		child.Sigs[callee.Params[i]] = actual
	}
	return lw.lowerInstance(callee, child)
}
