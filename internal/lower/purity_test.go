package lower

import (
	"sync"
	"testing"

	"repro/internal/kernel"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/sem"
	"repro/internal/source"
)

// puritySrc exercises every construct whose lowering synthesizes AST
// nodes and records them in the analysis tables: initialized variable
// declarations (an assignment with a fresh LHS ident), switch (scratch
// tag variable plus synthesized ==/|| comparison chains), and module
// instantiation (per-instance rebinding over the same declarations).
const puritySrc = `
module leaf (input int cmd, output int res) {
	int acc = 3;
	while (1) {
		await(cmd);
		switch (cmd) {
		case 0:
			acc = acc + 1;
			break;
		case 1:
		case 2:
			acc = acc * 2;
			break;
		default:
			acc = 0;
		}
		emit_v(res, acc);
	}
}

module top (input int cmd, output int res) {
	int seed = 1;
	par {
		{ leaf(cmd, res); }
		{ while (1) { await(cmd); seed = seed + cmd; } }
	}
}
`

type infoSnapshot struct {
	uses     map[interface{}]sem.Object
	exprType map[interface{}]interface{}
	mayHalt  map[interface{}]bool
	isInst   map[interface{}]bool
	varOf    map[interface{}]*sem.VarInfo
	typeOf   map[interface{}]interface{}
	nTypes   int
	nConsts  int
	nFuncs   int
	nModules int
}

func snapshotInfo(info *sem.Info) *infoSnapshot {
	s := &infoSnapshot{
		uses:     make(map[interface{}]sem.Object, len(info.Uses)),
		exprType: make(map[interface{}]interface{}, len(info.ExprType)),
		mayHalt:  make(map[interface{}]bool, len(info.MayHalt)),
		isInst:   make(map[interface{}]bool, len(info.IsInst)),
		varOf:    make(map[interface{}]*sem.VarInfo, len(info.VarOf)),
		typeOf:   make(map[interface{}]interface{}, len(info.TypeOfExpr)),
		nTypes:   len(info.Types),
		nConsts:  len(info.Consts),
		nFuncs:   len(info.Funcs),
		nModules: len(info.Modules),
	}
	for k, v := range info.Uses {
		s.uses[k] = v
	}
	for k, v := range info.ExprType {
		s.exprType[k] = v
	}
	for k, v := range info.MayHalt {
		s.mayHalt[k] = v
	}
	for k, v := range info.IsInst {
		s.isInst[k] = v
	}
	for k, v := range info.VarOf {
		s.varOf[k] = v
	}
	for k, v := range info.TypeOfExpr {
		s.typeOf[k] = v
	}
	return s
}

func (s *infoSnapshot) diff(t *testing.T, info *sem.Info) {
	t.Helper()
	if len(info.Uses) != len(s.uses) {
		t.Errorf("Uses grew: %d entries before lowering, %d after", len(s.uses), len(info.Uses))
	}
	for k, v := range info.Uses {
		if want, ok := s.uses[k]; !ok || want != v {
			t.Errorf("Uses entry for %p changed or appeared", k)
		}
	}
	if len(info.ExprType) != len(s.exprType) {
		t.Errorf("ExprType grew: %d entries before lowering, %d after", len(s.exprType), len(info.ExprType))
	}
	for k, v := range info.ExprType {
		if want, ok := s.exprType[k]; !ok || want != interface{}(v) {
			t.Errorf("ExprType entry for %p changed or appeared", k)
		}
	}
	if len(info.MayHalt) != len(s.mayHalt) {
		t.Errorf("MayHalt grew: %d -> %d", len(s.mayHalt), len(info.MayHalt))
	}
	if len(info.IsInst) != len(s.isInst) {
		t.Errorf("IsInst grew: %d -> %d", len(s.isInst), len(info.IsInst))
	}
	if len(info.VarOf) != len(s.varOf) {
		t.Errorf("VarOf grew: %d -> %d", len(s.varOf), len(info.VarOf))
	}
	if len(info.TypeOfExpr) != len(s.typeOf) {
		t.Errorf("TypeOfExpr grew: %d -> %d", len(s.typeOf), len(info.TypeOfExpr))
	}
	if len(info.Types) != s.nTypes || len(info.Consts) != s.nConsts ||
		len(info.Funcs) != s.nFuncs || len(info.Modules) != s.nModules {
		t.Errorf("declaration tables changed size")
	}
}

// TestLowerPure is the purity regression guard the shared-front-end
// batch path rests on: lowering the same analyzed Info twice (and for
// every module, under both policies) must leave every analysis table
// bit-identical, with synthesized-node entries confined to the derived
// view each Result carries.
func TestLowerPure(t *testing.T) {
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("purity.ecl", puritySrc))
	f := parser.ParseFile(expanded, &diags)
	info := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front end:\n%s", diags.String())
	}
	before := snapshotInfo(info)

	for _, pol := range []Policy{MaximalReactive, MinimalReactive} {
		for _, mod := range []string{"leaf", "top"} {
			for i := 0; i < 2; i++ {
				var ldiags source.DiagList
				res, err := Lower(info, mod, pol, &ldiags)
				if err != nil {
					t.Fatalf("Lower(%s, %s) #%d: %v", mod, pol, i, err)
				}
				if res.Info == info {
					t.Fatalf("Lower(%s, %s) returned the base Info instead of a derived view", mod, pol)
				}
				before.diff(t, info)
			}
		}
	}
}

// TestLowerPureConcurrent lowers every module of one analyzed file from
// many goroutines at once — the exact shape of the shared-front-end
// batch path — and relies on the race detector to catch any write to
// the shared tables.
func TestLowerPureConcurrent(t *testing.T) {
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("purity.ecl", puritySrc))
	f := parser.ParseFile(expanded, &diags)
	info := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front end:\n%s", diags.String())
	}

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		mod := []string{"leaf", "top"}[i%2]
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ldiags source.DiagList
			res, err := Lower(info, mod, MaximalReactive, &ldiags)
			if err != nil {
				t.Errorf("Lower(%s): %v", mod, err)
				return
			}
			if n := count(res.Module.Body, func(s kernel.Stmt) bool { _, ok := s.(*kernel.Await); return ok }); n == 0 {
				t.Errorf("Lower(%s): no awaits in kernel body", mod)
			}
		}()
	}
	wg.Wait()
}
