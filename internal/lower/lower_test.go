package lower

import (
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/paperex"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/sem"
	"repro/internal/source"
)

func lowerSrc(t *testing.T, src, modName string, pol Policy) *Result {
	t.Helper()
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("test.ecl", src))
	f := parser.ParseFile(expanded, &diags)
	info := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front end:\n%s", diags.String())
	}
	res, err := Lower(info, modName, pol, &diags)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return res
}

func count(root kernel.Stmt, pred func(kernel.Stmt) bool) int {
	n := 0
	kernel.Walk(root, func(s kernel.Stmt) {
		if pred(s) {
			n++
		}
	})
	return n
}

func TestDataLoopExtractedBothPolicies(t *testing.T) {
	for _, pol := range []Policy{MaximalReactive, MinimalReactive} {
		res := lowerSrc(t, paperex.Header+paperex.CheckCRC, "checkcrc", pol)
		if len(res.Module.Funcs) == 0 {
			t.Errorf("policy %v: CRC data loop not extracted", pol)
		}
	}
}

func TestReactiveLoopStaysInKernel(t *testing.T) {
	res := lowerSrc(t, paperex.Header+paperex.Assemble, "assemble", MaximalReactive)
	if len(res.Module.Funcs) != 0 {
		t.Errorf("assemble's await-loop must not be extracted; got %d funcs", len(res.Module.Funcs))
	}
	if n := count(res.Module.Body, func(s kernel.Stmt) bool {
		_, ok := s.(*kernel.Await)
		return ok
	}); n != 1 {
		t.Errorf("awaits = %d, want 1", n)
	}
}

func TestMinimalPolicyExtractsRuns(t *testing.T) {
	resMax := lowerSrc(t, paperex.Buffer, "levelmon", MaximalReactive)
	resMin := lowerSrc(t, paperex.Buffer, "levelmon", MinimalReactive)
	if len(resMin.Module.Funcs) <= len(resMax.Module.Funcs) {
		t.Errorf("minimal policy should extract more runs: max=%d min=%d",
			len(resMax.Module.Funcs), len(resMin.Module.Funcs))
	}
	ifMax := count(resMax.Module.Body, func(s kernel.Stmt) bool { _, ok := s.(*kernel.IfData); return ok })
	ifMin := count(resMin.Module.Body, func(s kernel.Stmt) bool { _, ok := s.(*kernel.IfData); return ok })
	if ifMin >= ifMax {
		t.Errorf("minimal policy should keep fewer IfData nodes: max=%d min=%d", ifMax, ifMin)
	}
}

func TestInliningCreatesPerInstanceState(t *testing.T) {
	src := `module child(input pure i, output pure o) {
        int cnt;
        while (1) { await(i); cnt = cnt + 1; if (cnt == 2) emit(o); }
    }
    module top(input pure a, input pure b, output pure oa, output pure ob) {
        par {
            child(a, oa);
            child(b, ob);
        }
    }`
	res := lowerSrc(t, src, "top", MaximalReactive)
	names := map[string]bool{}
	for _, v := range res.Module.Vars {
		names[v.Name] = true
	}
	if len(res.Module.Vars) != 2 {
		t.Fatalf("vars = %v, want two per-instance counters", res.Module.Vars)
	}
	for n := range names {
		if !strings.Contains(n, "child") {
			t.Errorf("var %q lacks instance qualification", n)
		}
	}
}

func TestStackLowering(t *testing.T) {
	res := lowerSrc(t, paperex.Stack, "toplevel", MaximalReactive)
	if len(res.Module.Inputs) != 2 || len(res.Module.Outputs) != 1 {
		t.Errorf("interface: %d in, %d out", len(res.Module.Inputs), len(res.Module.Outputs))
	}
	// Locals: packet, crc_ok, and prochdr's kill_check.
	if len(res.Module.Locals) != 3 {
		t.Errorf("locals = %d, want 3", len(res.Module.Locals))
	}
	if err := res.Module.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
	st := kernel.CollectStats(res.Module)
	if st.Pars != 2 {
		t.Errorf("pars = %d, want 2 (toplevel + prochdr)", st.Pars)
	}
}

func TestBreakContinueLowering(t *testing.T) {
	src := `module m(input pure tick, input pure stop, output pure o) {
        int i;
        while (1) {
            await (tick);
            for (i = 0; i < 10; i++) {
                await (tick);
                present (stop) break;
                if (i == 5) continue;
                emit (o);
            }
        }
    }`
	res := lowerSrc(t, src, "m", MaximalReactive)
	exits := count(res.Module.Body, func(s kernel.Stmt) bool { _, ok := s.(*kernel.Exit); return ok })
	if exits < 3 {
		// break, continue, plus the for-loop's own bound check.
		t.Errorf("exits = %d, want >= 3", exits)
	}
	if err := res.Module.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestSwitchLowering(t *testing.T) {
	src := `typedef unsigned char byte;
    module m(input byte b, output pure lo, output pure hi) {
        while (1) {
            await (b);
            switch (b) {
            case 1:
            case 2:
                emit (lo);
                break;
            default:
                emit (hi);
            }
        }
    }`
	res := lowerSrc(t, src, "m", MaximalReactive)
	if err := res.Module.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// The tag is evaluated once into a scratch variable.
	found := false
	for _, v := range res.Module.Vars {
		if strings.Contains(v.Name, "swtag") {
			found = true
		}
	}
	if !found {
		t.Error("switch tag scratch variable missing")
	}
}

func TestSwitchFallthroughRejected(t *testing.T) {
	src := `typedef unsigned char byte;
    module m(input byte b, output pure o) {
        while (1) {
            await (b);
            switch (b) {
            case 1:
                emit (o);
            case 2:
                emit (o);
                break;
            }
        }
    }`
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("t.ecl", src))
	f := parser.ParseFile(expanded, &diags)
	info := sem.Analyze(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("front end: %s", diags.String())
	}
	if _, err := Lower(info, "m", MaximalReactive, &diags); err == nil {
		t.Fatal("fallthrough in reactive switch must be rejected")
	}
}

func TestEsterelArtifactMentionsDataCall(t *testing.T) {
	res := lowerSrc(t, paperex.Header+paperex.CheckCRC, "checkcrc", MaximalReactive)
	text := kernel.EsterelString(res.Module)
	if !strings.Contains(text, "call checkcrc_data") {
		t.Errorf("artifact missing extracted call:\n%s", text)
	}
}
