// Package kernel defines the Esterel kernel intermediate representation
// that ECL modules are lowered into. It is the contract between the
// front end (internal/lower) and the back ends: the reference
// interpreter (internal/interp), the EFSM compiler (internal/compile),
// and the circuit translator (internal/circuit).
//
// The IR mirrors Esterel's kernel statements — nothing, pause, emit,
// present, sequence, loop, parallel, trap/exit, abort (strong and
// weak), suspend, and local signal scope — extended with the data
// actions ECL needs: inline assignments, data-condition branches, and
// atomic calls to extracted C data functions. Data expressions reuse
// the front end's AST, bound to per-instance variable and signal
// tables so that one module instantiated twice gets independent state.
package kernel

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ctypes"
	"repro/internal/sem"
)

// SigClass classifies a signal's role after lowering and inlining.
type SigClass int

// Signal classes.
const (
	// Input signals come from the environment.
	Input SigClass = iota
	// Output signals go to the environment.
	Output
	// Local signals are internal (declared with "signal" or created by
	// inlining a module instantiation's internal connections).
	LocalSig
)

// String names the class.
func (c SigClass) String() string {
	switch c {
	case Input:
		return "input"
	case Output:
		return "output"
	case LocalSig:
		return "signal"
	}
	return "SigClass(?)"
}

// Signal is a runtime signal object. After lowering, every signal in a
// compiled unit is a distinct *Signal; sharing a pointer means sharing
// the wire.
type Signal struct {
	Name  string // unique within the compiled unit
	Class SigClass
	Pure  bool
	Type  ctypes.Type // value type; nil for pure
}

// String returns the signal name.
func (s *Signal) String() string { return s.Name }

// Var is a runtime variable slot. Each inlined module instance gets
// fresh Vars.
type Var struct {
	Name string // unique within the compiled unit
	Type ctypes.Type
}

// String returns the variable name.
func (v *Var) String() string { return v.Name }

// Binding connects AST expressions to the runtime objects of one
// module instance: which *Var each sem.VarInfo denotes, and which
// *Signal each sem.SignalInfo denotes.
type Binding struct {
	Info  *sem.Info
	Vars  map[*sem.VarInfo]*Var
	Sigs  map[*sem.SignalInfo]*Signal
	Label string // instance path, e.g. "toplevel.assemble"
}

// Expr is an AST expression bound to an instance.
type Expr struct {
	B *Binding
	E ast.Expr
}

// String renders the expression source.
func (e Expr) String() string { return ast.ExprString(e.E) }

// DataFunc is an extracted C data function: a run of data-only
// statements executed atomically within an instant.
type DataFunc struct {
	Name string
	B    *Binding
	Body []ast.Stmt
}

// String returns the function name.
func (f *DataFunc) String() string { return f.Name }

// ---------------------------------------------------------------------------
// Signal expressions (presence formulas)

// SigExpr is a Boolean formula over signal presence.
type SigExpr interface {
	sigExpr()
	String() string
	// Signals appends the referenced signals to dst.
	Signals(dst []*Signal) []*Signal
}

// SigRef tests presence of one signal.
type SigRef struct{ Sig *Signal }

// SigNot negates a presence formula.
type SigNot struct{ X SigExpr }

// SigAnd conjoins two presence formulas.
type SigAnd struct{ X, Y SigExpr }

// SigOr disjoins two presence formulas.
type SigOr struct{ X, Y SigExpr }

func (*SigRef) sigExpr() {}
func (*SigNot) sigExpr() {}
func (*SigAnd) sigExpr() {}
func (*SigOr) sigExpr()  {}

func (s *SigRef) String() string { return s.Sig.Name }
func (s *SigNot) String() string { return "not " + s.X.String() }
func (s *SigAnd) String() string { return "(" + s.X.String() + " and " + s.Y.String() + ")" }
func (s *SigOr) String() string  { return "(" + s.X.String() + " or " + s.Y.String() + ")" }

// Signals implements SigExpr.
func (s *SigRef) Signals(dst []*Signal) []*Signal { return append(dst, s.Sig) }

// Signals implements SigExpr.
func (s *SigNot) Signals(dst []*Signal) []*Signal { return s.X.Signals(dst) }

// Signals implements SigExpr.
func (s *SigAnd) Signals(dst []*Signal) []*Signal { return s.Y.Signals(s.X.Signals(dst)) }

// Signals implements SigExpr.
func (s *SigOr) Signals(dst []*Signal) []*Signal { return s.Y.Signals(s.X.Signals(dst)) }

// ---------------------------------------------------------------------------
// Statements

// Stmt is a kernel statement. Every node carries a unique ID (assigned
// by Module.Number) used for control-state bookkeeping.
type Stmt interface {
	kernelStmt()
	// ID returns the node's unique number within its module.
	ID() int
	setID(int)
}

type node struct{ id int }

func (n *node) ID() int      { return n.id }
func (n *node) setID(id int) { n.id = id }
func (n *node) kernelStmt()  {}

// Nothing does nothing and terminates instantly.
type Nothing struct{ node }

// Pause ends the instant; control resumes after it next instant.
type Pause struct{ node }

// Halt pauses forever (until preempted from outside).
type Halt struct{ node }

// Await pauses, then in each later instant tests Sig and terminates
// when it holds (ECL/Esterel delayed await).
type Await struct {
	node
	Sig SigExpr
}

// Emit makes Sig present this instant; Value (if non-nil) becomes the
// signal's carried value.
type Emit struct {
	node
	Sig   *Signal
	Value *Expr
}

// Assign is an inline data action: LHS = RHS (compound ops and
// inc/dec are normalized by the splitter into plain assignments or
// kept as expression actions).
type Assign struct {
	node
	LHS Expr
	RHS Expr
}

// Eval evaluates an expression for its side effects (e.g. a void
// function call kept inline).
type Eval struct {
	node
	X Expr
}

// DataCall atomically executes an extracted data function.
type DataCall struct {
	node
	F *DataFunc
}

// Seq runs children in order.
type Seq struct {
	node
	List []Stmt
}

// Loop runs Body forever; exits only via an enclosing Trap/Exit or
// preemption. The interpreter flags instantaneous loop bodies.
type Loop struct {
	node
	Body Stmt
}

// Par runs branches concurrently; terminates when all branches have
// terminated.
type Par struct {
	node
	Branches []Stmt
}

// Present branches on a presence formula, instantaneously.
type Present struct {
	node
	Sig  SigExpr
	Then Stmt // may be nil
	Else Stmt // may be nil
}

// IfData branches on a C data condition, instantaneously.
type IfData struct {
	node
	Cond Expr
	Then Stmt // may be nil
	Else Stmt // may be nil
}

// Trap declares an exit scope: an Exit targeting it aborts Body and
// continues after the Trap.
type Trap struct {
	node
	Name string
	Body Stmt
}

// Exit jumps out of the targeted Trap.
type Exit struct {
	node
	Target *Trap
}

// Abort preempts Body when Sig holds at the start of a later instant
// (strong) or at the end of the triggering instant (weak). Handler, if
// non-nil, runs when the abort triggers (not on normal termination).
type Abort struct {
	node
	Body    Stmt
	Sig     SigExpr
	Weak    bool
	Handler Stmt // may be nil
}

// Suspend freezes Body in instants where Sig holds.
type Suspend struct {
	node
	Body Stmt
	Sig  SigExpr
}

// Local introduces a local signal scope. After lowering, signal
// objects are globally unique, so Local only marks the declaration
// point (each instant the signal's status starts undetermined).
type Local struct {
	node
	Sig  *Signal
	Body Stmt
}

// ---------------------------------------------------------------------------
// Module

// Module is one compiled unit: a (possibly inlined) reactive program.
type Module struct {
	Name    string
	Inputs  []*Signal
	Outputs []*Signal
	Locals  []*Signal
	Vars    []*Var
	Funcs   []*DataFunc
	Body    Stmt

	nodes []Stmt // by ID, filled by Number
}

// Number assigns dense IDs to every statement node and records the
// node table. It must be called once after construction.
func (m *Module) Number() {
	m.nodes = m.nodes[:0]
	var walk func(s Stmt)
	walk = func(s Stmt) {
		if s == nil {
			return
		}
		s.setID(len(m.nodes))
		m.nodes = append(m.nodes, s)
		for _, c := range Children(s) {
			walk(c)
		}
	}
	walk(m.Body)
}

// NumNodes returns the number of numbered statement nodes.
func (m *Module) NumNodes() int { return len(m.nodes) }

// Node returns the statement with the given ID.
func (m *Module) Node(id int) Stmt { return m.nodes[id] }

// Signals returns all signals: inputs, outputs, then locals.
func (m *Module) Signals() []*Signal {
	out := make([]*Signal, 0, len(m.Inputs)+len(m.Outputs)+len(m.Locals))
	out = append(out, m.Inputs...)
	out = append(out, m.Outputs...)
	out = append(out, m.Locals...)
	return out
}

// Signal returns the signal with the given name, or nil.
func (m *Module) Signal(name string) *Signal {
	for _, s := range m.Signals() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Children returns the direct child statements of s, in order.
func Children(s Stmt) []Stmt {
	switch s := s.(type) {
	case *Seq:
		return s.List
	case *Loop:
		return []Stmt{s.Body}
	case *Par:
		return s.Branches
	case *Present:
		return []Stmt{s.Then, s.Else}
	case *IfData:
		return []Stmt{s.Then, s.Else}
	case *Trap:
		return []Stmt{s.Body}
	case *Abort:
		return []Stmt{s.Body, s.Handler}
	case *Suspend:
		return []Stmt{s.Body}
	case *Local:
		return []Stmt{s.Body}
	}
	return nil
}

// Walk visits s and all descendants in preorder (nil children skipped).
func Walk(s Stmt, f func(Stmt)) {
	if s == nil {
		return
	}
	f(s)
	for _, c := range Children(s) {
		Walk(c, f)
	}
}

// EmitSet returns the set of signals that the subtree rooted at s may
// emit (a sound over-approximation used by the causality analysis).
func EmitSet(s Stmt) map[*Signal]bool {
	out := make(map[*Signal]bool)
	Walk(s, func(n Stmt) {
		if e, ok := n.(*Emit); ok {
			out[e.Sig] = true
		}
	})
	return out
}

// MayPause reports whether the subtree can end an instant with control
// retained inside (contains pause/halt/await).
func MayPause(s Stmt) bool {
	found := false
	Walk(s, func(n Stmt) {
		switch n.(type) {
		case *Pause, *Halt, *Await:
			found = true
		}
	})
	return found
}

// Validate performs structural sanity checks on a numbered module and
// returns the first problem found, or nil.
func (m *Module) Validate() error {
	if m.Body == nil {
		return fmt.Errorf("module %s: nil body", m.Name)
	}
	if len(m.nodes) == 0 {
		return fmt.Errorf("module %s: not numbered (call Number)", m.Name)
	}
	seen := make(map[int]bool)
	traps := make(map[*Trap]bool)
	var err error
	var walk func(s Stmt)
	walk = func(s Stmt) {
		if s == nil || err != nil {
			return
		}
		if seen[s.ID()] {
			err = fmt.Errorf("module %s: duplicate or shared node id %d (%T)", m.Name, s.ID(), s)
			return
		}
		seen[s.ID()] = true
		if t, ok := s.(*Trap); ok {
			traps[t] = true
		}
		if e, ok := s.(*Exit); ok {
			if e.Target == nil || !traps[e.Target] {
				err = fmt.Errorf("module %s: exit targets an unknown or non-enclosing trap", m.Name)
				return
			}
		}
		for _, c := range Children(s) {
			walk(c)
		}
		if t, ok := s.(*Trap); ok {
			delete(traps, t)
		}
	}
	walk(m.Body)
	return err
}
