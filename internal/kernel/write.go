package kernel

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/ast"
)

// WriteEsterel renders the module as Esterel-flavored source text: the
// artifact the ECL compiler's phase 1 hands to the Esterel compiler in
// the paper's flow. Data actions appear as host-language calls, the
// way Esterel v5 embeds C.
func WriteEsterel(w io.Writer, m *Module) error {
	p := &esterelPrinter{w: w}
	p.printf("module %s:\n", m.Name)
	for _, s := range m.Inputs {
		p.printf("input %s%s;\n", s.Name, typeSuffix(s))
	}
	for _, s := range m.Outputs {
		p.printf("output %s%s;\n", s.Name, typeSuffix(s))
	}
	if len(m.Vars) > 0 {
		var decls []string
		for _, v := range m.Vars {
			decls = append(decls, fmt.Sprintf("%s : %s", v.Name, v.Type))
		}
		p.printf("var %s in\n", strings.Join(decls, ", "))
	}
	p.stmt(m.Body)
	if len(m.Vars) > 0 {
		p.printf("end var\n")
	}
	p.printf("end module\n")
	return p.err
}

// EsterelString renders the module as Esterel-flavored source.
func EsterelString(m *Module) string {
	var b strings.Builder
	_ = WriteEsterel(&b, m)
	return b.String()
}

func typeSuffix(s *Signal) string {
	if s.Pure {
		return ""
	}
	return " : " + s.Type.String()
}

type esterelPrinter struct {
	w      io.Writer
	indent int
	err    error
}

func (p *esterelPrinter) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *esterelPrinter) line(format string, args ...interface{}) {
	p.printf("%s", strings.Repeat("  ", p.indent))
	p.printf(format, args...)
	p.printf("\n")
}

func (p *esterelPrinter) block(s Stmt) {
	p.indent++
	p.stmt(s)
	p.indent--
}

func (p *esterelPrinter) stmt(s Stmt) {
	switch s := s.(type) {
	case nil:
		p.line("nothing")
	case *Nothing:
		p.line("nothing")
	case *Pause:
		p.line("pause")
	case *Halt:
		p.line("halt")
	case *Await:
		if s.Sig == nil {
			p.line("pause")
		} else {
			p.line("await [%s]", s.Sig)
		}
	case *Emit:
		if s.Value != nil {
			p.line("emit %s(%s)", s.Sig.Name, ast.ExprString(s.Value.E))
		} else {
			p.line("emit %s", s.Sig.Name)
		}
	case *Assign:
		p.line("call %s := %s", ast.ExprString(s.LHS.E), ast.ExprString(s.RHS.E))
	case *Eval:
		p.line("call %s", ast.ExprString(s.X.E))
	case *DataCall:
		p.line("call %s()", s.F.Name)
	case *Seq:
		for i, c := range s.List {
			if i > 0 {
				p.line(";")
			}
			p.stmt(c)
		}
	case *Loop:
		p.line("loop")
		p.block(s.Body)
		p.line("end loop")
	case *Par:
		p.line("[")
		for i, b := range s.Branches {
			if i > 0 {
				p.line("||")
			}
			p.block(b)
		}
		p.line("]")
	case *Present:
		p.line("present [%s] then", s.Sig)
		if s.Then != nil {
			p.block(s.Then)
		}
		if s.Else != nil {
			p.line("else")
			p.block(s.Else)
		}
		p.line("end present")
	case *IfData:
		p.line("if %s then", ast.ExprString(s.Cond.E))
		if s.Then != nil {
			p.block(s.Then)
		}
		if s.Else != nil {
			p.line("else")
			p.block(s.Else)
		}
		p.line("end if")
	case *Trap:
		p.line("trap %s in", s.Name)
		p.block(s.Body)
		p.line("end trap")
	case *Exit:
		p.line("exit %s", s.Target.Name)
	case *Abort:
		kw := "abort"
		if s.Weak {
			kw = "weak abort"
		}
		p.line("%s", kw)
		p.block(s.Body)
		p.line("when [%s]%s", s.Sig, map[bool]string{true: " do", false: ""}[s.Handler != nil])
		if s.Handler != nil {
			p.block(s.Handler)
			p.line("end abort")
		}
	case *Suspend:
		p.line("suspend")
		p.block(s.Body)
		p.line("when [%s]", s.Sig)
	case *Local:
		p.line("signal %s%s in", s.Sig.Name, typeSuffix(s.Sig))
		p.block(s.Body)
		p.line("end signal")
	default:
		p.line("%% unknown node %T", s)
	}
}

// Stats summarizes a module's kernel structure; the cost model and the
// benchmark harness report these.
type Stats struct {
	Nodes     int
	Pauses    int // pause/halt/await nodes (potential control states)
	Emits     int
	Assigns   int
	DataCalls int
	Pars      int
	Presents  int
	IfDatas   int
	Aborts    int
	Suspends  int
	Traps     int
}

// CollectStats walks the module body and tallies node kinds.
func CollectStats(m *Module) Stats {
	var st Stats
	Walk(m.Body, func(s Stmt) {
		st.Nodes++
		switch s.(type) {
		case *Pause, *Halt, *Await:
			st.Pauses++
		case *Emit:
			st.Emits++
		case *Assign:
			st.Assigns++
		case *DataCall:
			st.DataCalls++
		case *Par:
			st.Pars++
		case *Present:
			st.Presents++
		case *IfData:
			st.IfDatas++
		case *Abort:
			st.Aborts++
		case *Suspend:
			st.Suspends++
		case *Trap:
			st.Traps++
		}
	})
	return st
}
