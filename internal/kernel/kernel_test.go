package kernel

import (
	"strings"
	"testing"

	"repro/internal/ctypes"
)

// tiny builds: loop { await A; emit O } with a trap for structure tests.
func tinyModule() *Module {
	a := &Signal{Name: "A", Class: Input, Pure: true}
	o := &Signal{Name: "O", Class: Output, Pure: true}
	trap := &Trap{Name: "T"}
	trap.Body = &Seq{List: []Stmt{
		&Await{Sig: &SigRef{Sig: a}},
		&Emit{Sig: o},
		&Exit{Target: trap},
	}}
	m := &Module{
		Name:    "tiny",
		Inputs:  []*Signal{a},
		Outputs: []*Signal{o},
		Body:    &Loop{Body: trap},
	}
	m.Number()
	return m
}

func TestNumbering(t *testing.T) {
	m := tinyModule()
	if m.NumNodes() != 6 {
		t.Errorf("nodes = %d, want 6 (loop, trap, seq, await, emit, exit)", m.NumNodes())
	}
	seen := map[int]bool{}
	Walk(m.Body, func(s Stmt) {
		if seen[s.ID()] {
			t.Errorf("duplicate id %d", s.ID())
		}
		seen[s.ID()] = true
		if m.Node(s.ID()) != s {
			t.Errorf("node table wrong at %d", s.ID())
		}
	})
}

func TestValidateOK(t *testing.T) {
	if err := tinyModule().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesEscapedExit(t *testing.T) {
	other := &Trap{Name: "elsewhere", Body: &Nothing{}}
	m := &Module{
		Name: "bad",
		Body: &Seq{List: []Stmt{&Exit{Target: other}}},
	}
	m.Number()
	if err := m.Validate(); err == nil {
		t.Fatal("exit to non-enclosing trap must fail validation")
	}
}

func TestValidateCatchesSharedNodes(t *testing.T) {
	shared := &Nothing{}
	m := &Module{Name: "bad", Body: &Seq{List: []Stmt{shared, shared}}}
	m.Number()
	if err := m.Validate(); err == nil {
		t.Fatal("shared node must fail validation")
	}
}

func TestEmitSetAndMayPause(t *testing.T) {
	m := tinyModule()
	set := EmitSet(m.Body)
	if len(set) != 1 {
		t.Errorf("emit set size = %d", len(set))
	}
	if !MayPause(m.Body) {
		t.Error("module with await must MayPause")
	}
	if MayPause(&Emit{Sig: m.Outputs[0]}) {
		t.Error("emit alone must not MayPause")
	}
}

func TestSigExprStringAndSignals(t *testing.T) {
	a := &Signal{Name: "a"}
	b := &Signal{Name: "b"}
	e := &SigOr{X: &SigAnd{X: &SigRef{Sig: a}, Y: &SigNot{X: &SigRef{Sig: b}}}, Y: &SigRef{Sig: a}}
	if got := e.String(); got != "((a and not b) or a)" {
		t.Errorf("String = %q", got)
	}
	sigs := e.Signals(nil)
	if len(sigs) != 3 {
		t.Errorf("signals = %d, want 3 occurrences", len(sigs))
	}
}

func TestEsterelWriter(t *testing.T) {
	m := tinyModule()
	text := EsterelString(m)
	for _, want := range []string{
		"module tiny:", "input A;", "output O;",
		"await [A]", "emit O", "trap T in", "exit T", "loop", "end module",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestEsterelWriterValuedSignal(t *testing.T) {
	v := &Signal{Name: "v", Class: Input, Type: ctypes.UChar}
	m := &Module{Name: "m", Inputs: []*Signal{v}, Body: &Halt{}}
	m.Number()
	if !strings.Contains(EsterelString(m), "input v : unsigned char;") {
		t.Error("valued signal type missing")
	}
}

func TestCollectStats(t *testing.T) {
	m := tinyModule()
	st := CollectStats(m)
	if st.Pauses != 1 || st.Emits != 1 || st.Traps != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestChildrenCoverage(t *testing.T) {
	a := &Signal{Name: "a", Pure: true}
	nodes := []Stmt{
		&Seq{List: []Stmt{&Nothing{}}},
		&Loop{Body: &Nothing{}},
		&Par{Branches: []Stmt{&Nothing{}, &Nothing{}}},
		&Present{Sig: &SigRef{Sig: a}, Then: &Nothing{}},
		&IfData{Then: &Nothing{}, Else: &Nothing{}},
		&Trap{Body: &Nothing{}},
		&Abort{Body: &Nothing{}, Sig: &SigRef{Sig: a}},
		&Suspend{Body: &Nothing{}, Sig: &SigRef{Sig: a}},
		&Local{Sig: a, Body: &Nothing{}},
	}
	for _, n := range nodes {
		if len(Children(n)) == 0 {
			t.Errorf("%T has no children", n)
		}
	}
	if Children(&Nothing{}) != nil {
		t.Error("leaf node has children")
	}
}
