package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/paperex"
	"repro/internal/pp"
	"repro/internal/source"
)

// parseSrc preprocesses and parses src, failing the test on any error.
func parseSrc(t *testing.T, src string) *ast.File {
	t.Helper()
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("test.ecl", src))
	f := ParseFile(expanded, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	return f
}

// parseErr parses src expecting at least one error.
func parseErr(t *testing.T, src string) *source.DiagList {
	t.Helper()
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("test.ecl", src))
	ParseFile(expanded, &diags)
	if !diags.HasErrors() {
		t.Fatalf("expected parse errors for:\n%s", src)
	}
	return &diags
}

func TestParseTypedefs(t *testing.T) {
	f := parseSrc(t, paperex.Header)
	var names []string
	for _, d := range f.Decls {
		if td, ok := d.(*ast.TypedefDecl); ok {
			names = append(names, td.Name)
		}
	}
	want := "byte packet_view_1_t packet_view_2_t packet_t"
	if strings.Join(names, " ") != want {
		t.Errorf("typedefs = %v, want %q", names, want)
	}
}

func TestParseStructFields(t *testing.T) {
	f := parseSrc(t, paperex.Header)
	td := f.Decls[2].(*ast.TypedefDecl) // packet_view_2_t
	st := td.Type.(*ast.StructType)
	if len(st.Fields) != 3 {
		t.Fatalf("got %d fields, want 3", len(st.Fields))
	}
	wantNames := []string{"header", "data", "crc"}
	for i, fld := range st.Fields {
		if fld.Name != wantNames[i] {
			t.Errorf("field %d = %q, want %q", i, fld.Name, wantNames[i])
		}
		if len(fld.Dims) != 1 {
			t.Errorf("field %q has %d dims, want 1", fld.Name, len(fld.Dims))
		}
	}
}

func TestParseUnion(t *testing.T) {
	f := parseSrc(t, paperex.Header)
	td := f.Decls[3].(*ast.TypedefDecl) // packet_t
	st := td.Type.(*ast.StructType)
	if !st.Union {
		t.Error("packet_t should be a union")
	}
	if len(st.Fields) != 2 || st.Fields[0].Name != "raw" || st.Fields[1].Name != "cooked" {
		t.Errorf("union fields wrong: %+v", st.Fields)
	}
}

func TestParseModuleSignature(t *testing.T) {
	f := parseSrc(t, paperex.Header+paperex.Assemble)
	m := f.Module("assemble")
	if m == nil {
		t.Fatal("module assemble not found")
	}
	if len(m.Params) != 3 {
		t.Fatalf("got %d params, want 3", len(m.Params))
	}
	p0, p1, p2 := m.Params[0], m.Params[1], m.Params[2]
	if p0.Name != "reset" || !p0.Pure || p0.Dir != ast.In {
		t.Errorf("param0: %+v", p0)
	}
	if p1.Name != "in_byte" || p1.Pure || p1.Dir != ast.In {
		t.Errorf("param1: %+v", p1)
	}
	if p2.Name != "outpkt" || p2.Dir != ast.Out {
		t.Errorf("param2: %+v", p2)
	}
}

// findStmt walks the tree depth-first and returns the first statement
// for which pred returns true.
func findStmt(s ast.Stmt, pred func(ast.Stmt) bool) ast.Stmt {
	if s == nil {
		return nil
	}
	if pred(s) {
		return s
	}
	var children []ast.Stmt
	switch s := s.(type) {
	case *ast.Block:
		children = s.Stmts
	case *ast.If:
		children = []ast.Stmt{s.Then, s.Else}
	case *ast.While:
		children = []ast.Stmt{s.Body}
	case *ast.DoWhile:
		children = []ast.Stmt{s.Body}
	case *ast.For:
		children = []ast.Stmt{s.Init, s.Post, s.Body}
	case *ast.Switch:
		for _, c := range s.Cases {
			children = append(children, c.Body...)
		}
	case *ast.Present:
		children = []ast.Stmt{s.Then, s.Else}
	case *ast.DoPreempt:
		children = []ast.Stmt{s.Body, s.Handler}
	case *ast.Par:
		children = s.Branches
	}
	for _, c := range children {
		if c == nil {
			continue
		}
		if found := findStmt(c, pred); found != nil {
			return found
		}
	}
	return nil
}

func TestParseAssembleBody(t *testing.T) {
	f := parseSrc(t, paperex.Header+paperex.Assemble)
	m := f.Module("assemble")
	ab := findStmt(m.Body, func(s ast.Stmt) bool {
		_, ok := s.(*ast.DoPreempt)
		return ok
	})
	if ab == nil {
		t.Fatal("no do/abort found")
	}
	dp := ab.(*ast.DoPreempt)
	if dp.Kind != ast.Strong {
		t.Errorf("kind = %v, want abort", dp.Kind)
	}
	if id, ok := dp.Sig.(*ast.Ident); !ok || id.Name != "reset" {
		t.Errorf("abort signal = %v", ast.ExprString(dp.Sig))
	}
	aw := findStmt(m.Body, func(s ast.Stmt) bool {
		_, ok := s.(*ast.Await)
		return ok
	})
	if aw == nil {
		t.Fatal("no await found")
	}
	em := findStmt(m.Body, func(s ast.Stmt) bool {
		e, ok := s.(*ast.Emit)
		return ok && e.Value != nil
	})
	if em == nil {
		t.Fatal("no emit_v found")
	}
	if em.(*ast.Emit).Signal.Name != "outpkt" {
		t.Errorf("emit signal = %q", em.(*ast.Emit).Signal.Name)
	}
}

func TestParseCheckCRCCommaFor(t *testing.T) {
	f := parseSrc(t, paperex.Header+paperex.CheckCRC)
	m := f.Module("checkcrc")
	fs := findStmt(m.Body, func(s ast.Stmt) bool {
		_, ok := s.(*ast.For)
		return ok
	})
	if fs == nil {
		t.Fatal("no for loop found")
	}
	init := fs.(*ast.For).Init.(*ast.ExprStmt)
	// "i = 0, crc = 0" folds into a comma Binary.
	if _, ok := init.X.(*ast.Binary); !ok {
		t.Errorf("for-init is %T, want comma Binary", init.X)
	}
}

func TestParseProcHdrParAndLocalSignal(t *testing.T) {
	f := parseSrc(t, paperex.Header+paperex.ProcHdr)
	m := f.Module("prochdr")
	sd := findStmt(m.Body, func(s ast.Stmt) bool {
		_, ok := s.(*ast.SignalDecl)
		return ok
	})
	if sd == nil {
		t.Fatal("no local signal decl")
	}
	if d := sd.(*ast.SignalDecl); d.Name != "kill_check" || !d.Pure {
		t.Errorf("signal decl: %+v", d)
	}
	ps := findStmt(m.Body, func(s ast.Stmt) bool {
		_, ok := s.(*ast.Par)
		return ok
	})
	if ps == nil {
		t.Fatal("no par found")
	}
	if n := len(ps.(*ast.Par).Branches); n != 2 {
		t.Errorf("par has %d branches, want 2", n)
	}
}

func TestParseTopLevelInstantiations(t *testing.T) {
	f := parseSrc(t, paperex.Stack)
	m := f.Module("toplevel")
	if m == nil {
		t.Fatal("toplevel not found")
	}
	ps := findStmt(m.Body, func(s ast.Stmt) bool {
		_, ok := s.(*ast.Par)
		return ok
	})
	if ps == nil {
		t.Fatal("no par in toplevel")
	}
	par := ps.(*ast.Par)
	if len(par.Branches) != 3 {
		t.Fatalf("par has %d branches, want 3", len(par.Branches))
	}
	wantCallees := []string{"assemble", "checkcrc", "prochdr"}
	for i, b := range par.Branches {
		es, ok := b.(*ast.ExprStmt)
		if !ok {
			t.Fatalf("branch %d is %T", i, b)
		}
		call, ok := es.X.(*ast.Call)
		if !ok || call.Fun.Name != wantCallees[i] {
			t.Errorf("branch %d: got %s", i, ast.ExprString(es.X))
		}
	}
}

func TestParseBufferExample(t *testing.T) {
	f := parseSrc(t, paperex.Buffer)
	for _, name := range []string{"recordctl", "playctl", "levelmon", "bufferctl"} {
		if f.Module(name) == nil {
			t.Errorf("module %q not found", name)
		}
	}
}

func TestParseABRO(t *testing.T) {
	f := parseSrc(t, paperex.ABRO)
	if f.Module("abro") == nil {
		t.Fatal("abro not found")
	}
}

func TestParseWeakAbortHandle(t *testing.T) {
	f := parseSrc(t, paperex.RunnerStop)
	m := f.Module("runner")
	dp := findStmt(m.Body, func(s ast.Stmt) bool {
		d, ok := s.(*ast.DoPreempt)
		return ok && d.Kind == ast.Weak
	})
	if dp == nil {
		t.Fatal("no weak_abort found")
	}
	if dp.(*ast.DoPreempt).Handler == nil {
		t.Error("handle clause missing")
	}
}

func TestParseSuspend(t *testing.T) {
	src := `module m(input pure s, input pure t, output pure o) {
        do {
            while (1) { emit(o); await(t); }
        } suspend (s);
    }`
	f := parseSrc(t, src)
	m := f.Module("m")
	dp := findStmt(m.Body, func(s ast.Stmt) bool {
		d, ok := s.(*ast.DoPreempt)
		return ok && d.Kind == ast.Susp
	})
	if dp == nil {
		t.Fatal("no suspend found")
	}
}

func TestSuspendHandleRejected(t *testing.T) {
	parseErr(t, `module m(input pure s, output pure o) {
        do { halt(); } suspend (s) handle { emit(o); }
    }`)
}

func TestParseSignalExprOps(t *testing.T) {
	src := `module m(input pure a, input pure b, input pure c, output pure o) {
        await (a & b | ~c);
        emit (o);
    }`
	f := parseSrc(t, src)
	m := f.Module("m")
	aw := findStmt(m.Body, func(s ast.Stmt) bool {
		_, ok := s.(*ast.Await)
		return ok
	}).(*ast.Await)
	if got := ast.ExprString(aw.Sig); got != "((a & b) | ~c)" {
		t.Errorf("sigexpr = %q", got)
	}
}

func TestParseEmptyAwait(t *testing.T) {
	src := `module m(input pure a, output pure o) { await(); emit(o); }`
	f := parseSrc(t, src)
	aw := findStmt(f.Module("m").Body, func(s ast.Stmt) bool {
		_, ok := s.(*ast.Await)
		return ok
	}).(*ast.Await)
	if aw.Sig != nil {
		t.Error("empty await should have nil Sig")
	}
}

func TestParseCastExpr(t *testing.T) {
	src := paperex.Header + `module m(input packet_t p, output bool ok) {
        await(p);
        emit_v(ok, 1 == (int) p.cooked.crc);
    }`
	f := parseSrc(t, src)
	em := findStmt(f.Module("m").Body, func(s ast.Stmt) bool {
		e, ok := s.(*ast.Emit)
		return ok && e.Value != nil
	}).(*ast.Emit)
	bin := em.Value.(*ast.Binary)
	if _, ok := bin.Y.(*ast.Cast); !ok {
		t.Errorf("rhs = %T, want Cast", bin.Y)
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `module m(input pure a, output bool o) {
        int x;
        x = 1 + 2 * 3;
        x = (1 ^ 2) << 1;
        x = 1 < 2 == 0;
        emit(o);
    }`
	f := parseSrc(t, src)
	var got []string
	findStmt(f.Module("m").Body, func(s ast.Stmt) bool {
		if es, ok := s.(*ast.ExprStmt); ok {
			got = append(got, ast.ExprString(es.X))
		}
		return false
	})
	want := []string{
		"x = (1 + (2 * 3))",
		"x = ((1 ^ 2) << 1)",
		"x = ((1 < 2) == 0)",
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("expr %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestParseSwitchCaseGroups(t *testing.T) {
	src := `typedef unsigned char byte;
    module m(input byte b, output pure o) {
        int x;
        while (1) {
            await (b);
            switch (b) {
            case 1:
            case 2:
                x = 1;
                break;
            default:
                x = 0;
            }
            if (x) emit(o);
        }
    }`
	f := parseSrc(t, src)
	sw := findStmt(f.Module("m").Body, func(s ast.Stmt) bool {
		_, ok := s.(*ast.Switch)
		return ok
	}).(*ast.Switch)
	if len(sw.Cases) != 2 {
		t.Fatalf("got %d cases, want 2", len(sw.Cases))
	}
	if len(sw.Cases[0].Values) != 2 {
		t.Errorf("first case has %d values, want 2 (grouped)", len(sw.Cases[0].Values))
	}
	if sw.Cases[1].Values != nil {
		t.Error("second case should be default")
	}
}

func TestParseErrorRecovery(t *testing.T) {
	// A bad statement must not prevent later modules from parsing.
	src := `module bad(input pure a, output pure o) { emit(); }
    module good(input pure a, output pure o) { await(a); emit(o); }`
	var diags source.DiagList
	expanded := pp.New(&diags, nil).Expand(source.NewFile("test.ecl", src))
	f := ParseFile(expanded, &diags)
	if !diags.HasErrors() {
		t.Fatal("expected errors from bad module")
	}
	if f.Module("good") == nil {
		t.Error("recovery failed: module good missing")
	}
}

func TestParseUnknownTypeName(t *testing.T) {
	parseErr(t, `module m(input wibble w, output pure o) { halt(); }`)
}

func TestRoundTripPrintParsePrint(t *testing.T) {
	sources := map[string]string{
		"stack":  paperex.Stack,
		"buffer": paperex.Buffer,
		"abro":   paperex.ABRO,
		"runner": paperex.RunnerStop,
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			f1 := parseSrc(t, src)
			printed1 := ast.String(f1)
			// The printed form must itself parse cleanly...
			var diags source.DiagList
			f2 := ParseFile(source.NewFile("printed.ecl", printed1), &diags)
			if diags.HasErrors() {
				t.Fatalf("printed source does not re-parse:\n%s\n--- source:\n%s", diags.String(), printed1)
			}
			// ... and printing again must be a fixed point.
			printed2 := ast.String(f2)
			if printed1 != printed2 {
				t.Errorf("print/parse/print not stable:\n--- first:\n%s\n--- second:\n%s", printed1, printed2)
			}
		})
	}
}

func TestParseGlobalsAndFunctions(t *testing.T) {
	src := `typedef unsigned char byte;
    int table[4];
    int add2(int a, int b) { return a + b; }
    module m(input byte x, output pure o) {
        while (1) { await (x); if (add2(x, 1) > 3) emit(o); }
    }`
	f := parseSrc(t, src)
	var haveVar, haveFunc bool
	for _, d := range f.Decls {
		switch d.(type) {
		case *ast.GlobalVarDecl:
			haveVar = true
		case *ast.FuncDecl:
			haveFunc = true
		}
	}
	if !haveVar || !haveFunc {
		t.Errorf("haveVar=%v haveFunc=%v", haveVar, haveFunc)
	}
}
