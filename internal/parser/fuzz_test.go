package parser

import (
	"testing"

	"repro/internal/paperex"
	"repro/internal/source"
)

// FuzzParse feeds arbitrary text to the parser (seeded from the
// paper-example corpus) and asserts it never panics — every failure
// must surface as a diagnostic.
func FuzzParse(f *testing.F) {
	f.Add(paperex.ABRO)
	f.Add(paperex.RunnerStop)
	f.Add(paperex.Stack)
	f.Add(paperex.Buffer)
	f.Add(paperex.Header + paperex.Assemble)
	f.Add("module m (input pure a) { await (a); }")
	f.Add("module m (") // truncated
	f.Add("x \x00 \xff ?")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		var diags source.DiagList
		file := ParseFile(source.NewFile("fuzz.ecl", src), &diags)
		if file == nil {
			t.Fatal("ParseFile returned nil file")
		}
	})
}
