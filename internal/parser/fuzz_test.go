package parser

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/eclgen"
	"repro/internal/paperex"
	"repro/internal/source"
)

// seedGenerated adds the eclgen mini-corpus (pinned under
// internal/eclgen/testdata/corpus), so mutation starts from machine-
// generated shapes — deep preemption nests, wrapper instantiations —
// that the hand-written examples don't cover.
func seedGenerated(f *testing.F) {
	for _, c := range eclgen.Corpus() {
		f.Add(eclgen.Generate(c.Config))
	}
}

// seedExamples widens the corpus with every shipped example (ROADMAP:
// the .ecl corpus under examples/), so fuzzing mutates real designs —
// protocol stacks, preemption nests — not just the paper figures.
func seedExamples(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.ecl"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no example corpus found; did examples/ move?")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
}

// FuzzParse feeds arbitrary text to the parser (seeded from the
// paper-example corpus) and asserts it never panics — every failure
// must surface as a diagnostic.
func FuzzParse(f *testing.F) {
	f.Add(paperex.ABRO)
	f.Add(paperex.RunnerStop)
	f.Add(paperex.Stack)
	f.Add(paperex.Buffer)
	f.Add(paperex.Header + paperex.Assemble)
	f.Add("module m (input pure a) { await (a); }")
	f.Add("module m (") // truncated
	f.Add("x \x00 \xff ?")
	seedExamples(f)
	seedGenerated(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		var diags source.DiagList
		file := ParseFile(source.NewFile("fuzz.ecl", src), &diags)
		if file == nil {
			t.Fatal("ParseFile returned nil file")
		}
	})
}
