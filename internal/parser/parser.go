// Package parser implements a recursive-descent parser for ECL. It
// consumes tokens from internal/lexer and produces an internal/ast
// tree. Like any C parser it tracks typedef names during the parse to
// disambiguate declarations from expressions.
package parser

import (
	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/source"
	"repro/internal/token"
)

// Parser holds the parse state for one translation unit.
type Parser struct {
	lex   *lexer.Lexer
	file  *source.File
	diags *source.DiagList

	tok  token.Token // current token
	next token.Token // one-token lookahead

	typedefs map[string]bool
	modules  map[string]bool
}

// New prepares a parser over the (already preprocessed) file.
func New(file *source.File, diags *source.DiagList) *Parser {
	p := &Parser{
		lex:      lexer.New(file, diags),
		file:     file,
		diags:    diags,
		typedefs: make(map[string]bool),
		modules:  make(map[string]bool),
	}
	p.tok = p.lex.Next()
	p.next = p.lex.Next()
	return p
}

// ParseFile parses source text into an ast.File, reporting problems to
// diags. It is the package's main entry point.
func ParseFile(file *source.File, diags *source.DiagList) *ast.File {
	p := New(file, diags)
	return p.parseFile()
}

func (p *Parser) pos() source.Pos { return p.file.Pos(p.tok.Offset) }

func (p *Parser) errorf(format string, args ...interface{}) {
	p.diags.Errorf(p.pos(), format, args...)
}

func (p *Parser) advance() {
	p.tok = p.next
	p.next = p.lex.Next()
}

func (p *Parser) got(k token.Kind) bool {
	if p.tok.Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) source.Pos {
	pos := p.pos()
	if p.tok.Kind != k {
		p.errorf("expected %q, found %q", k.String(), p.tok.String())
		// Do not consume: the caller's recovery loop will skip.
		return pos
	}
	p.advance()
	return pos
}

// skipTo skips tokens until one of the kinds (or EOF) is current.
func (p *Parser) skipTo(kinds ...token.Kind) {
	for p.tok.Kind != token.EOF {
		for _, k := range kinds {
			if p.tok.Kind == k {
				return
			}
		}
		p.advance()
	}
}

// ---------------------------------------------------------------------------
// File / declarations

func (p *Parser) parseFile() *ast.File {
	f := &ast.File{Name: p.file.Name}
	for p.tok.Kind != token.EOF {
		before := p.tok
		d := p.parseDecl()
		if d != nil {
			f.Decls = append(f.Decls, d)
		}
		if p.tok == before && p.tok.Kind != token.EOF {
			// No progress: consume a token to avoid looping.
			p.errorf("unexpected token %q at top level", p.tok.String())
			p.advance()
		}
	}
	return f
}

func (p *Parser) parseDecl() ast.Decl {
	switch p.tok.Kind {
	case token.TYPEDEF:
		return p.parseTypedef()
	case token.MODULE:
		return p.parseModule()
	case token.STRUCT, token.UNION, token.ENUM:
		// Could be a bare type decl or a variable/function declaration.
		return p.parseTypeLeadDecl()
	case token.STATIC, token.CONST:
		p.advance() // storage-class specifiers are accepted and ignored
		return p.parseDecl()
	case token.SEMI:
		p.advance()
		return nil
	default:
		if p.startsType() {
			return p.parseTypeLeadDecl()
		}
		p.errorf("expected declaration, found %q", p.tok.String())
		p.skipTo(token.SEMI, token.RBRACE)
		p.got(token.SEMI)
		return nil
	}
}

func (p *Parser) parseTypedef() ast.Decl {
	kw := p.expect(token.TYPEDEF)
	base := p.parseType()
	if p.tok.Kind != token.IDENT {
		p.errorf("expected typedef name, found %q", p.tok.String())
		p.skipTo(token.SEMI)
		p.got(token.SEMI)
		return nil
	}
	name := p.tok.Lit
	p.advance()
	t := p.parseArraySuffix(base)
	p.expect(token.SEMI)
	p.typedefs[name] = true
	return &ast.TypedefDecl{KwPos: kw, Name: name, Type: t}
}

// parseTypeLeadDecl parses a declaration that begins with a type:
// a bare struct/union/enum definition, a global variable, or a function.
func (p *Parser) parseTypeLeadDecl() ast.Decl {
	t := p.parseType()
	if p.tok.Kind == token.SEMI {
		p.advance()
		return &ast.TypeDecl{Type: t}
	}
	if p.tok.Kind != token.IDENT {
		p.errorf("expected declarator name, found %q", p.tok.String())
		p.skipTo(token.SEMI, token.RBRACE)
		p.got(token.SEMI)
		return nil
	}
	namePos := p.pos()
	name := p.tok.Lit
	p.advance()

	if p.tok.Kind == token.LPAREN {
		return p.parseFuncRest(t, name, namePos)
	}

	vt := p.parseArraySuffix(t)
	var init ast.Expr
	if p.got(token.ASSIGN) {
		init = p.parseAssignExpr()
	}
	p.expect(token.SEMI)
	return &ast.GlobalVarDecl{Var: &ast.VarDecl{DeclPos: namePos, Type: vt, Name: name, Init: init}}
}

func (p *Parser) parseFuncRest(ret ast.TypeExpr, name string, namePos source.Pos) ast.Decl {
	p.expect(token.LPAREN)
	var params []*ast.Param
	if p.tok.Kind != token.RPAREN {
		if p.tok.Kind == token.VOID && p.next.Kind == token.RPAREN {
			p.advance()
		} else {
			for {
				pt := p.parseType()
				pname := ""
				if p.tok.Kind == token.IDENT {
					pname = p.tok.Lit
					p.advance()
				}
				pt = p.parseArraySuffix(pt)
				params = append(params, &ast.Param{Type: pt, Name: pname})
				if !p.got(token.COMMA) {
					break
				}
			}
		}
	}
	p.expect(token.RPAREN)
	if p.got(token.SEMI) {
		// Prototype only; represent as a body-less function.
		return &ast.FuncDecl{KwPos: namePos, Ret: ret, Name: name, Params: params}
	}
	body := p.parseBlock()
	return &ast.FuncDecl{KwPos: namePos, Ret: ret, Name: name, Params: params, Body: body}
}

func (p *Parser) parseModule() ast.Decl {
	kw := p.expect(token.MODULE)
	if p.tok.Kind != token.IDENT {
		p.errorf("expected module name, found %q", p.tok.String())
		p.skipTo(token.LBRACE, token.SEMI)
	}
	name := p.tok.Lit
	p.advance()
	p.modules[name] = true
	p.expect(token.LPAREN)
	var params []*ast.SigParam
	if p.tok.Kind != token.RPAREN {
		for {
			sp := p.parseSigParam()
			if sp != nil {
				params = append(params, sp)
			}
			if !p.got(token.COMMA) {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	body := p.parseBlock()
	return &ast.ModuleDecl{KwPos: kw, Name: name, Params: params, Body: body}
}

func (p *Parser) parseSigParam() *ast.SigParam {
	dirPos := p.pos()
	var dir ast.SigDir
	switch p.tok.Kind {
	case token.INPUT:
		dir = ast.In
	case token.OUTPUT:
		dir = ast.Out
	default:
		p.errorf("expected 'input' or 'output', found %q", p.tok.String())
		p.skipTo(token.COMMA, token.RPAREN)
		return nil
	}
	p.advance()
	sp := &ast.SigParam{DirPos: dirPos, Dir: dir}
	if p.got(token.PURE) {
		sp.Pure = true
	} else {
		sp.Type = p.parseType()
	}
	if p.tok.Kind != token.IDENT {
		p.errorf("expected signal name, found %q", p.tok.String())
		p.skipTo(token.COMMA, token.RPAREN)
		return nil
	}
	sp.Name = p.tok.Lit
	p.advance()
	return sp
}

// ---------------------------------------------------------------------------
// Types

// startsType reports whether the current token can begin a type.
func (p *Parser) startsType() bool {
	if p.tok.Kind.IsTypeKeyword() {
		return true
	}
	return p.tok.Kind == token.IDENT && p.typedefs[p.tok.Lit]
}

// parseType parses a type specifier (no declarator suffixes).
func (p *Parser) parseType() ast.TypeExpr {
	pos := p.pos()
	switch p.tok.Kind {
	case token.STRUCT, token.UNION:
		return p.parseStructType()
	case token.ENUM:
		return p.parseEnumType()
	case token.IDENT:
		name := p.tok.Lit
		if !p.typedefs[name] {
			p.errorf("unknown type name %q", name)
		}
		p.advance()
		return p.parsePointerSuffix(&ast.NamedType{NamePos: pos, Name: name})
	}
	if !p.tok.Kind.IsTypeKeyword() {
		p.errorf("expected type, found %q", p.tok.String())
		p.advance()
		return &ast.BuiltinType{KwPos: pos, Kind: ast.Int}
	}
	// Collect C specifier keywords and merge them.
	var hasUnsigned, hasSigned, hasShort, hasChar, hasInt, hasLong bool
	var simple ast.BuiltinKind = ast.Int
	simpleSet := false
	for p.tok.Kind.IsTypeKeyword() {
		switch p.tok.Kind {
		case token.UNSIGNED:
			hasUnsigned = true
		case token.SIGNED:
			hasSigned = true
		case token.SHORT:
			hasShort = true
		case token.LONG:
			hasLong = true
		case token.CHAR_KW:
			hasChar = true
		case token.INT_KW:
			hasInt = true
		case token.VOID:
			simple, simpleSet = ast.Void, true
		case token.BOOL_KW:
			simple, simpleSet = ast.Bool, true
		case token.FLOAT_KW:
			simple, simpleSet = ast.Float, true
		case token.DOUBLE:
			simple, simpleSet = ast.Double, true
		case token.STRUCT, token.UNION, token.ENUM:
			// Handled above; cannot follow other specifiers here.
			p.errorf("unexpected %q in type specifier", p.tok.String())
		}
		p.advance()
	}
	kind := simple
	switch {
	case simpleSet:
		// void/bool/float/double stand alone.
	case hasChar:
		switch {
		case hasUnsigned:
			kind = ast.UChar
		case hasSigned:
			kind = ast.SChar
		default:
			kind = ast.Char
		}
	case hasShort:
		if hasUnsigned {
			kind = ast.UShort
		} else {
			kind = ast.Short
		}
	case hasLong:
		if hasUnsigned {
			kind = ast.ULong
		} else {
			kind = ast.Long
		}
	case hasInt || hasUnsigned || hasSigned:
		if hasUnsigned {
			kind = ast.UInt
		} else {
			kind = ast.Int
		}
	}
	_ = hasInt
	return p.parsePointerSuffix(&ast.BuiltinType{KwPos: pos, Kind: kind})
}

func (p *Parser) parsePointerSuffix(t ast.TypeExpr) ast.TypeExpr {
	for p.tok.Kind == token.MUL {
		star := p.pos()
		p.advance()
		t = &ast.PointerType{StarPos: star, Elem: t}
	}
	return t
}

// parseArraySuffix applies [n][m]... dimensions written after a
// declarator name. C's row-major reading means the first written
// dimension is the outermost array.
func (p *Parser) parseArraySuffix(t ast.TypeExpr) ast.TypeExpr {
	var dims []ast.Expr
	for p.got(token.LBRACK) {
		dims = append(dims, p.parseExpr())
		p.expect(token.RBRACK)
	}
	for i := len(dims) - 1; i >= 0; i-- {
		t = &ast.ArrayType{Elem: t, Len: dims[i]}
	}
	return t
}

func (p *Parser) parseStructType() ast.TypeExpr {
	pos := p.pos()
	union := p.tok.Kind == token.UNION
	p.advance()
	tag := ""
	if p.tok.Kind == token.IDENT {
		tag = p.tok.Lit
		p.advance()
	}
	if !p.got(token.LBRACE) {
		return p.parsePointerSuffix(&ast.StructType{KwPos: pos, Union: union, Tag: tag})
	}
	st := &ast.StructType{KwPos: pos, Union: union, Tag: tag, Fields: []*ast.Field{}}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		ft := p.parseType()
		for {
			if p.tok.Kind != token.IDENT {
				p.errorf("expected field name, found %q", p.tok.String())
				p.skipTo(token.SEMI, token.RBRACE)
				break
			}
			fname := p.tok.Lit
			p.advance()
			var dims []ast.Expr
			for p.got(token.LBRACK) {
				dims = append(dims, p.parseExpr())
				p.expect(token.RBRACK)
			}
			st.Fields = append(st.Fields, &ast.Field{Type: ft, Name: fname, Dims: dims})
			if !p.got(token.COMMA) {
				break
			}
		}
		p.expect(token.SEMI)
	}
	p.expect(token.RBRACE)
	return p.parsePointerSuffix(st)
}

func (p *Parser) parseEnumType() ast.TypeExpr {
	pos := p.expect(token.ENUM)
	tag := ""
	if p.tok.Kind == token.IDENT {
		tag = p.tok.Lit
		p.advance()
	}
	if !p.got(token.LBRACE) {
		return &ast.EnumType{KwPos: pos, Tag: tag}
	}
	et := &ast.EnumType{KwPos: pos, Tag: tag, Items: []*ast.EnumItem{}}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		if p.tok.Kind != token.IDENT {
			p.errorf("expected enumerator name, found %q", p.tok.String())
			p.skipTo(token.COMMA, token.RBRACE)
		} else {
			item := &ast.EnumItem{Name: p.tok.Lit}
			p.advance()
			if p.got(token.ASSIGN) {
				item.Value = p.parseAssignExpr()
			}
			et.Items = append(et.Items, item)
		}
		if !p.got(token.COMMA) {
			break
		}
	}
	p.expect(token.RBRACE)
	return et
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseBlock() *ast.Block {
	lb := p.expect(token.LBRACE)
	b := &ast.Block{LBrace: lb}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		before := p.tok
		stmts := p.parseStmtOrDecls()
		b.Stmts = append(b.Stmts, stmts...)
		if p.tok == before {
			p.errorf("unexpected token %q in block", p.tok.String())
			p.advance()
		}
	}
	p.expect(token.RBRACE)
	return b
}

// parseStmtOrDecls parses one statement, or a declaration which may
// expand to several VarDecl statements (int a, b;).
func (p *Parser) parseStmtOrDecls() []ast.Stmt {
	if p.tok.Kind == token.SIGNAL {
		return []ast.Stmt{p.parseSignalDecl()}
	}
	if p.isDeclStart() {
		return p.parseLocalDecl()
	}
	return []ast.Stmt{p.parseStmt()}
}

// isDeclStart distinguishes "packet_t buffer;" from "buffer = x;".
func (p *Parser) isDeclStart() bool {
	switch p.tok.Kind {
	case token.STRUCT, token.UNION, token.ENUM, token.CONST, token.STATIC:
		return true
	}
	if p.tok.Kind.IsTypeKeyword() {
		return true
	}
	if p.tok.Kind == token.IDENT && p.typedefs[p.tok.Lit] {
		// A typedef name followed by an identifier or '*' begins a decl.
		return p.next.Kind == token.IDENT || p.next.Kind == token.MUL
	}
	return false
}

func (p *Parser) parseSignalDecl() ast.Stmt {
	kw := p.expect(token.SIGNAL)
	sd := &ast.SignalDecl{KwPos: kw}
	if p.got(token.PURE) {
		sd.Pure = true
	} else {
		sd.Type = p.parseType()
	}
	if p.tok.Kind != token.IDENT {
		p.errorf("expected signal name, found %q", p.tok.String())
		p.skipTo(token.SEMI)
	} else {
		sd.Name = p.tok.Lit
		p.advance()
	}
	p.expect(token.SEMI)
	return sd
}

func (p *Parser) parseLocalDecl() []ast.Stmt {
	for p.tok.Kind == token.CONST || p.tok.Kind == token.STATIC {
		p.advance()
	}
	base := p.parseType()
	var out []ast.Stmt
	for {
		if p.tok.Kind != token.IDENT {
			p.errorf("expected variable name, found %q", p.tok.String())
			p.skipTo(token.SEMI, token.RBRACE)
			break
		}
		namePos := p.pos()
		name := p.tok.Lit
		p.advance()
		t := p.parseArraySuffix(base)
		var init ast.Expr
		if p.got(token.ASSIGN) {
			init = p.parseAssignExpr()
		}
		out = append(out, &ast.VarDecl{DeclPos: namePos, Type: t, Name: name, Init: init})
		if !p.got(token.COMMA) {
			break
		}
	}
	p.expect(token.SEMI)
	return out
}

func (p *Parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.SEMI:
		pos := p.pos()
		p.advance()
		return &ast.Empty{SemiPos: pos}
	case token.IF:
		return p.parseIf()
	case token.WHILE:
		return p.parseWhile()
	case token.DO:
		return p.parseDo()
	case token.FOR:
		return p.parseFor()
	case token.SWITCH:
		return p.parseSwitch()
	case token.BREAK:
		pos := p.pos()
		p.advance()
		p.expect(token.SEMI)
		return &ast.Break{KwPos: pos}
	case token.CONTINUE:
		pos := p.pos()
		p.advance()
		p.expect(token.SEMI)
		return &ast.Continue{KwPos: pos}
	case token.RETURN:
		pos := p.pos()
		p.advance()
		var x ast.Expr
		if p.tok.Kind != token.SEMI {
			x = p.parseExpr()
		}
		p.expect(token.SEMI)
		return &ast.Return{KwPos: pos, X: x}
	case token.EMIT, token.EMIT_V:
		return p.parseEmit()
	case token.AWAIT:
		return p.parseAwait()
	case token.HALT:
		pos := p.pos()
		p.advance()
		p.expect(token.LPAREN)
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.Halt{KwPos: pos}
	case token.PRESENT:
		return p.parsePresent()
	case token.PAR:
		return p.parsePar()
	default:
		x := p.parseExpr()
		p.expect(token.SEMI)
		return &ast.ExprStmt{X: x}
	}
}

func (p *Parser) parseIf() ast.Stmt {
	pos := p.expect(token.IF)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseStmt()
	var els ast.Stmt
	if p.got(token.ELSE) {
		els = p.parseStmt()
	}
	return &ast.If{KwPos: pos, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseWhile() ast.Stmt {
	pos := p.expect(token.WHILE)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	body := p.parseStmt()
	return &ast.While{KwPos: pos, Cond: cond, Body: body}
}

// parseDo handles both C do/while and ECL's do/abort family.
func (p *Parser) parseDo() ast.Stmt {
	pos := p.expect(token.DO)
	body := p.parseStmt()
	switch p.tok.Kind {
	case token.WHILE:
		p.advance()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.DoWhile{KwPos: pos, Body: body, Cond: cond}
	case token.ABORT, token.WEAK_ABORT, token.SUSPEND:
		kind := ast.Strong
		switch p.tok.Kind {
		case token.WEAK_ABORT:
			kind = ast.Weak
		case token.SUSPEND:
			kind = ast.Susp
		}
		p.advance()
		p.expect(token.LPAREN)
		sig := p.parseExpr()
		p.expect(token.RPAREN)
		var handler ast.Stmt
		if p.tok.Kind == token.HANDLE {
			if kind == ast.Susp {
				p.errorf("suspend does not take a handle clause")
			}
			p.advance()
			handler = p.parseStmt()
		} else {
			p.got(token.SEMI)
		}
		return &ast.DoPreempt{KwPos: pos, Kind: kind, Body: body, Sig: sig, Handler: handler}
	default:
		p.errorf("expected 'while', 'abort', 'weak_abort' or 'suspend' after do-body, found %q", p.tok.String())
		return body
	}
}

func (p *Parser) parseFor() ast.Stmt {
	pos := p.expect(token.FOR)
	p.expect(token.LPAREN)
	var init ast.Stmt
	if p.tok.Kind != token.SEMI {
		if p.isDeclStart() {
			decls := p.parseLocalDecl() // consumes the ';'
			if len(decls) == 1 {
				init = decls[0]
			} else {
				init = &ast.Block{LBrace: pos, Stmts: decls}
			}
		} else {
			init = &ast.ExprStmt{X: p.parseCommaExpr()}
			p.expect(token.SEMI)
		}
	} else {
		p.expect(token.SEMI)
	}
	var cond ast.Expr
	if p.tok.Kind != token.SEMI {
		cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	var post ast.Stmt
	if p.tok.Kind != token.RPAREN {
		post = &ast.ExprStmt{X: p.parseCommaExpr()}
	}
	p.expect(token.RPAREN)
	body := p.parseStmt()
	return &ast.For{KwPos: pos, Init: init, Cond: cond, Post: post, Body: body}
}

func (p *Parser) parseSwitch() ast.Stmt {
	pos := p.expect(token.SWITCH)
	p.expect(token.LPAREN)
	tag := p.parseExpr()
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)
	sw := &ast.Switch{KwPos: pos, Tag: tag}
	var cur *ast.CaseClause
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.CASE:
			cpos := p.pos()
			p.advance()
			v := p.parseExpr()
			p.expect(token.COLON)
			if cur != nil && len(cur.Body) == 0 {
				cur.Values = append(cur.Values, v)
			} else {
				cur = &ast.CaseClause{KwPos: cpos, Values: []ast.Expr{v}}
				sw.Cases = append(sw.Cases, cur)
			}
		case token.DEFAULT:
			cpos := p.pos()
			p.advance()
			p.expect(token.COLON)
			cur = &ast.CaseClause{KwPos: cpos}
			sw.Cases = append(sw.Cases, cur)
		default:
			if cur == nil {
				p.errorf("statement before first case in switch")
				cur = &ast.CaseClause{KwPos: p.pos()}
				sw.Cases = append(sw.Cases, cur)
			}
			cur.Body = append(cur.Body, p.parseStmtOrDecls()...)
		}
	}
	p.expect(token.RBRACE)
	return sw
}

func (p *Parser) parseEmit() ast.Stmt {
	valued := p.tok.Kind == token.EMIT_V
	pos := p.pos()
	p.advance()
	p.expect(token.LPAREN)
	if p.tok.Kind != token.IDENT {
		p.errorf("expected signal name in emit, found %q", p.tok.String())
		p.skipTo(token.SEMI)
		p.got(token.SEMI)
		return &ast.Empty{SemiPos: pos}
	}
	sig := &ast.Ident{NamePos: p.pos(), Name: p.tok.Lit}
	p.advance()
	var val ast.Expr
	if valued {
		p.expect(token.COMMA)
		val = p.parseAssignExpr()
	}
	p.expect(token.RPAREN)
	p.expect(token.SEMI)
	return &ast.Emit{KwPos: pos, Signal: sig, Value: val}
}

func (p *Parser) parseAwait() ast.Stmt {
	pos := p.expect(token.AWAIT)
	p.expect(token.LPAREN)
	var sig ast.Expr
	if p.tok.Kind != token.RPAREN {
		sig = p.parseExpr()
	}
	p.expect(token.RPAREN)
	p.expect(token.SEMI)
	return &ast.Await{KwPos: pos, Sig: sig}
}

func (p *Parser) parsePresent() ast.Stmt {
	pos := p.expect(token.PRESENT)
	p.expect(token.LPAREN)
	sig := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseStmt()
	var els ast.Stmt
	if p.got(token.ELSE) {
		els = p.parseStmt()
	}
	return &ast.Present{KwPos: pos, Sig: sig, Then: then, Else: els}
}

// parsePar parses par { b1; b2; ... }. Each top-level statement of the
// block is one concurrent branch; a nested block groups statements
// into a single branch.
func (p *Parser) parsePar() ast.Stmt {
	pos := p.expect(token.PAR)
	p.expect(token.LBRACE)
	par := &ast.Par{KwPos: pos}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		before := p.tok
		stmts := p.parseStmtOrDecls()
		par.Branches = append(par.Branches, stmts...)
		if p.tok == before {
			p.errorf("unexpected token %q in par", p.tok.String())
			p.advance()
		}
	}
	p.expect(token.RBRACE)
	return par
}

// ---------------------------------------------------------------------------
// Expressions

// parseCommaExpr parses "a, b, c" (the C comma operator), used in for
// clauses. Comma folds left-associatively into Binary nodes.
func (p *Parser) parseCommaExpr() ast.Expr {
	x := p.parseAssignExpr()
	for p.tok.Kind == token.COMMA {
		p.advance()
		y := p.parseAssignExpr()
		x = &ast.Binary{X: x, Op: token.COMMA, Y: y}
	}
	return x
}

// parseExpr parses an expression without top-level commas.
func (p *Parser) parseExpr() ast.Expr { return p.parseAssignExpr() }

func (p *Parser) parseAssignExpr() ast.Expr {
	x := p.parseCondExpr()
	if p.tok.Kind.IsAssignOp() {
		op := p.tok.Kind
		p.advance()
		rhs := p.parseAssignExpr()
		return &ast.Assign{LHS: x, Op: op, RHS: rhs}
	}
	return x
}

func (p *Parser) parseCondExpr() ast.Expr {
	x := p.parseBinaryExpr(1)
	if p.got(token.QUESTION) {
		then := p.parseAssignExpr()
		p.expect(token.COLON)
		els := p.parseCondExpr()
		return &ast.Cond{CondX: x, Then: then, Else: els}
	}
	return x
}

func (p *Parser) parseBinaryExpr(minPrec int) ast.Expr {
	x := p.parseUnaryExpr()
	for {
		prec := p.tok.Kind.Precedence()
		if prec < minPrec {
			return x
		}
		op := p.tok.Kind
		p.advance()
		y := p.parseBinaryExpr(prec + 1)
		x = &ast.Binary{X: x, Op: op, Y: y}
	}
}

func (p *Parser) parseUnaryExpr() ast.Expr {
	pos := p.pos()
	switch p.tok.Kind {
	case token.ADD, token.SUB, token.NOT, token.TILDE, token.AND, token.MUL:
		op := p.tok.Kind
		p.advance()
		return &ast.Unary{OpPos: pos, Op: op, X: p.parseUnaryExpr()}
	case token.INC, token.DEC:
		op := p.tok.Kind
		p.advance()
		return &ast.Unary{OpPos: pos, Op: op, X: p.parseUnaryExpr()}
	case token.SIZEOF:
		p.advance()
		p.expect(token.LPAREN)
		var se ast.SizeofExpr
		se.KwPos = pos
		if p.startsType() {
			se.Type = p.parseType()
		} else {
			se.X = p.parseExpr()
		}
		p.expect(token.RPAREN)
		return &se
	case token.LPAREN:
		// Cast or parenthesized expression.
		if p.castAhead() {
			lp := p.pos()
			p.advance()
			t := p.parseType()
			p.expect(token.RPAREN)
			x := p.parseUnaryExpr()
			return &ast.Cast{LP: lp, Type: t, X: x}
		}
	}
	return p.parsePostfixExpr()
}

// castAhead reports whether the current '(' opens a cast.
func (p *Parser) castAhead() bool {
	if p.tok.Kind != token.LPAREN {
		return false
	}
	switch p.next.Kind {
	case token.IDENT:
		return p.typedefs[p.next.Lit]
	default:
		return p.next.Kind.IsTypeKeyword()
	}
}

func (p *Parser) parsePostfixExpr() ast.Expr {
	x := p.parsePrimaryExpr()
	for {
		switch p.tok.Kind {
		case token.LBRACK:
			p.advance()
			sub := p.parseExpr()
			p.expect(token.RBRACK)
			x = &ast.Index{X: x, Sub: sub}
		case token.DOT:
			p.advance()
			if p.tok.Kind != token.IDENT {
				p.errorf("expected field name after '.', found %q", p.tok.String())
				return x
			}
			x = &ast.Member{X: x, Name: p.tok.Lit}
			p.advance()
		case token.ARROW:
			p.advance()
			if p.tok.Kind != token.IDENT {
				p.errorf("expected field name after '->', found %q", p.tok.String())
				return x
			}
			x = &ast.Member{X: x, Name: p.tok.Lit, Arrow: true}
			p.advance()
		case token.INC, token.DEC:
			x = &ast.Postfix{X: x, Op: p.tok.Kind}
			p.advance()
		case token.LPAREN:
			id, ok := x.(*ast.Ident)
			if !ok {
				p.errorf("call of non-identifier expression")
				return x
			}
			p.advance()
			call := &ast.Call{Fun: id}
			if p.tok.Kind != token.RPAREN {
				for {
					call.Args = append(call.Args, p.parseAssignExpr())
					if !p.got(token.COMMA) {
						break
					}
				}
			}
			p.expect(token.RPAREN)
			x = call
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimaryExpr() ast.Expr {
	pos := p.pos()
	switch p.tok.Kind {
	case token.IDENT:
		id := &ast.Ident{NamePos: pos, Name: p.tok.Lit}
		p.advance()
		return id
	case token.INT, token.FLOAT, token.CHAR, token.STRING:
		lit := &ast.BasicLit{LitPos: pos, Kind: p.tok.Kind, Value: p.tok.Lit}
		p.advance()
		return lit
	case token.LPAREN:
		p.advance()
		x := p.parseCommaExpr() // C allows the comma operator inside parens
		p.expect(token.RPAREN)
		return &ast.Paren{LP: pos, X: x}
	default:
		p.errorf("expected expression, found %q", p.tok.String())
		p.advance()
		return &ast.BasicLit{LitPos: pos, Kind: token.INT, Value: "0"}
	}
}
