// Analyzer robustness and soundness over the generated corpus: the
// abstract interpreter must digest every machine eclgen can produce
// without panicking, its findings must replay byte-identically from
// every cache tier, and its "certain trap" verdicts must agree with
// the concrete interpreter actually trapping.
package ecl

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cval"
	"repro/internal/eclgen"
	"repro/internal/exec"
	"repro/internal/pipeline"
)

// analyzeCorpus runs every module of every seeded program through one
// Runner with analysis on and renders the merged findings as one
// deterministic string.
func analyzeCorpus(t *testing.T, r *pipeline.Runner, seeds int) string {
	t.Helper()
	var all []analyze.Finding
	seen := map[string]bool{}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		src := eclgen.Program(seed)
		path := fmt.Sprintf("gen%03d.ecl", seed)
		req := pipeline.Request{Path: path, Source: src, Analyze: true}
		mods, _, err := r.Modules(req)
		if err != nil {
			t.Fatalf("seed %d: front end: %v", seed, err)
		}
		for _, mod := range mods {
			req.Module = mod
			res := r.Run(req)
			if res.Err != nil {
				t.Fatalf("seed %d module %s: %v", seed, mod, res.Err)
			}
			if res.Findings == nil || res.FileFindings == nil {
				t.Fatalf("seed %d module %s: analysis did not run", seed, mod)
			}
			for _, f := range append(append([]analyze.Finding(nil), res.Findings...), res.FileFindings...) {
				if line := f.String(); !seen[line] {
					seen[line] = true
					all = append(all, f)
				}
			}
		}
	}
	analyze.Sort(all)
	var b strings.Builder
	for _, f := range all {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// phaseTraffic sums one phase's counters across a runner's stats.
func phaseTraffic(st pipeline.PhaseStats, ph pipeline.Phase) pipeline.PhaseCounts {
	return st[ph]
}

// TestAnalyzerGeneratedCorpus drives the analyzer over 100 generated
// programs and pins cold/warm determinism across all three snapshot
// tiers: memory (same runner re-run), disk (fresh runner, same store),
// and remote (fresh runner, store behind the remote interface).
func TestAnalyzerGeneratedCorpus(t *testing.T) {
	const seeds = 100
	dir := t.TempDir()
	store, err := cache.Open(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}

	cold := pipeline.NewRunner(store)
	coldOut := analyzeCorpus(t, cold, seeds)
	if c := phaseTraffic(cold.Stats(), pipeline.PhaseAnalyze); c.Rebuilds == 0 {
		t.Fatalf("cold run rebuilt no analyze phases: %+v", c)
	}

	// Memory tier: the same runner serves the same corpus from its
	// in-process snapshots.
	memOut := analyzeCorpus(t, cold, seeds)
	if memOut != coldOut {
		t.Errorf("memory replay diverged from cold findings")
	}

	// Disk tier: a fresh runner over the same store must replay every
	// findings snapshot without re-analyzing.
	warm := pipeline.NewRunner(store)
	warmOut := analyzeCorpus(t, warm, seeds)
	if warmOut != coldOut {
		t.Errorf("disk replay diverged from cold findings")
	}
	wc := phaseTraffic(warm.Stats(), pipeline.PhaseAnalyze)
	if wc.Rebuilds != 0 {
		t.Errorf("warm disk run re-analyzed %d modules", wc.Rebuilds)
	}
	if wc.DiskHits == 0 {
		t.Errorf("warm disk run had no analyze disk hits: %+v", wc)
	}
	wf := phaseTraffic(warm.Stats(), pipeline.PhaseAnalyzeFile)
	if wf.Rebuilds != 0 {
		t.Errorf("warm disk run re-ran %d analyze-file phases", wf.Rebuilds)
	}

	// Remote tier: same store served through the cache.Tier interface
	// with no local disk in front.
	remote := &pipeline.Runner{Remote: store}
	remoteOut := analyzeCorpus(t, remote, seeds)
	if remoteOut != coldOut {
		t.Errorf("remote replay diverged from cold findings")
	}
	rc := phaseTraffic(remote.Stats(), pipeline.PhaseAnalyze)
	if rc.Rebuilds != 0 {
		t.Errorf("remote run re-analyzed %d modules", rc.Rebuilds)
	}
	if rc.RemoteHits == 0 {
		t.Errorf("remote run had no analyze remote hits: %+v", rc)
	}
}

// TestAnalyzerTrapSoundness cross-checks ECL030 against the concrete
// interpreter: a program the analyzer says traps on every execution
// must actually abort when stepped.
func TestAnalyzerTrapSoundness(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("internal", "analyze", "testdata", "vet", "ecl030_div_by_zero.ecl"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Parse("ecl030.ecl", string(src), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	design, err := prog.Compile("m")
	if err != nil {
		t.Fatal(err)
	}
	var hasECL030 bool
	for _, f := range analyze.Analyze(design) {
		if f.Rule == "ECL030" {
			hasECL030 = true
		}
	}
	if !hasECL030 {
		t.Fatal("analyzer did not flag the guaranteed division by zero")
	}
	m, err := exec.Open("interp", design)
	if err != nil {
		t.Fatal(err)
	}
	// The await is delayed, so the first presented trigger can pass
	// boot; within a few instants the division must trap.
	for i := 0; i < 5; i++ {
		if _, err := m.Step(map[string]cval.Value{"t": {}}); err != nil {
			if !strings.Contains(err.Error(), "zero") {
				t.Fatalf("trapped with unexpected error: %v", err)
			}
			return
		}
	}
	t.Fatal("ECL030-flagged program stepped 5 instants without trapping")
}
