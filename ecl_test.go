package ecl

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cache/remote"
	"repro/internal/paperex"
)

func TestPublicAPIQuickstart(t *testing.T) {
	prog, err := Parse("abro.ecl", paperex.ABRO, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mods := prog.Modules(); len(mods) != 1 || mods[0] != "abro" {
		t.Fatalf("modules: %v", mods)
	}
	design, err := prog.Compile("abro")
	if err != nil {
		t.Fatal(err)
	}
	m, err := OpenMachine("efsm", design)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(map[string]Value{"A": {}}); err != nil {
		t.Fatal(err)
	}
	r, err := m.Step(map[string]Value{"B": {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Outputs["O"]; !ok {
		t.Error("O missing after A then B")
	}
}

func TestPublicAPIBackendsAndTraces(t *testing.T) {
	names := Backends()
	if len(names) < 4 {
		t.Fatalf("backends: %v", names)
	}
	prog, err := Parse("abro.ecl", paperex.ABRO, Options{})
	if err != nil {
		t.Fatal(err)
	}
	design, err := prog.Compile("abro")
	if err != nil {
		t.Fatal(err)
	}
	m, err := OpenMachine("interp", design)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RecordTrace(m, []map[string]Value{nil, {"A": {}}, {"B": {}}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	other, err := OpenMachine("efsm", design)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReplayTrace(other, back)
	if err != nil {
		t.Fatal(err)
	}
	if err := DiffTraces(back, got); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPISession(t *testing.T) {
	prog, err := Parse("abro.ecl", paperex.ABRO, Options{})
	if err != nil {
		t.Fatal(err)
	}
	design, err := prog.Compile("abro")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession()
	id, err := s.Open("", "efsm", design)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(id, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(id, map[string]Value{"A": {}}); err != nil {
		t.Fatal(err)
	}
	fork, err := s.Fork(id, "")
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Step(fork, map[string]Value{"B": {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Outputs["O"]; !ok {
		t.Errorf("forked machine lost state: %v", r.Outputs)
	}
}

func TestPublicAPIArtifacts(t *testing.T) {
	prog, err := Parse("stack.ecl", paperex.Stack, Options{})
	if err != nil {
		t.Fatal(err)
	}
	design, err := prog.Compile("toplevel")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(design.EsterelText(), "module toplevel:") {
		t.Error("Esterel artifact wrong")
	}
	if !strings.Contains(design.CText(), "toplevel_react") {
		t.Error("C artifact wrong")
	}
	goSrc, err := design.GoText("stack")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(goSrc, "package stack") {
		t.Error("Go artifact wrong")
	}
	if !strings.Contains(design.GlueText(), "ecl_sigval_") {
		t.Error("glue artifact wrong")
	}
	if !strings.Contains(design.DotText(), "digraph") {
		t.Error("DOT artifact wrong")
	}
	// The stack has a data part: hardware synthesis must refuse.
	if _, err := design.VerilogText(); err == nil {
		t.Error("hardware synthesis should fail for a module with data code")
	}
}

func TestPublicAPIHardware(t *testing.T) {
	prog, err := Parse("abro.ecl", paperex.ABRO, Options{})
	if err != nil {
		t.Fatal(err)
	}
	design, err := prog.Compile("abro")
	if err != nil {
		t.Fatal(err)
	}
	v, err := design.VerilogText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v, "module abro") {
		t.Error("verilog wrong")
	}
	vh, err := design.VHDLText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vh, "entity abro") {
		t.Error("vhdl wrong")
	}
}

func TestPublicAPIMinimize(t *testing.T) {
	prog, err := Parse("abro.ecl", paperex.ABRO, Options{Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	design, err := prog.Compile("abro")
	if err != nil {
		t.Fatal(err)
	}
	if design.Stats().EFSM.States == 0 {
		t.Error("no states after minimize")
	}
}

func TestPublicAPIIncludesAndDefines(t *testing.T) {
	src := `#include "types.h"
module m(input word w, output pure big) {
    while (1) { await (w); if (w > LIMIT) emit (big); }
}`
	prog, err := Parse("m.ecl", src, Options{
		Includes: map[string]string{"types.h": "typedef unsigned short word;\n"},
		Defines:  map[string]string{"LIMIT": "100"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Compile("m"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDriver(t *testing.T) {
	d := NewDriver(4)
	targets, err := ParseTargets("esterel,c")
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := ExpandModules(BuildRequest{
		Path: "stack.ecl", Source: paperex.Stack, Targets: targets,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := d.Build(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4 stack modules", len(results))
	}
	for _, res := range results {
		if res.Failed() {
			t.Fatalf("%s: %v", res.Module, res.Err)
		}
		if !strings.Contains(res.Artifacts[TargetEsterel], "module "+res.Module+":") {
			t.Errorf("%s: esterel artifact wrong", res.Module)
		}
	}
	// Failures surface as structured diagnostics with phases.
	bad := d.BuildOne(BuildRequest{Path: "bad.ecl", Source: "module ("})
	if !bad.Failed() || len(bad.Diags) == 0 || bad.Diags[0].Phase != PhaseParse {
		t.Errorf("bad build: err=%v diags=%+v", bad.Err, bad.Diags)
	}
}

func TestTable1PublicEntry(t *testing.T) {
	cfg := DefaultTable1Config()
	cfg.Packets = 4
	cfg.Messages = 1
	cfg.SamplesPerMessage = 12
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(FormatTable1(rows), "Stack") {
		t.Error("format broken")
	}
}

func TestPublicAPIDiskCache(t *testing.T) {
	t.Setenv("ECL_CACHE_DIR", t.TempDir())
	if dir, err := CacheDir(); err != nil || dir == "" {
		t.Fatalf("CacheDir: %q, %v", dir, err)
	}
	req := BuildRequest{Path: "abro.ecl", Source: paperex.ABRO, Targets: []Target{TargetC}}
	for pass := 0; pass < 2; pass++ {
		store, err := OpenCache("")
		if err != nil {
			t.Fatal(err)
		}
		d := NewDriver(0)
		d.Disk = store
		res := d.BuildOne(req)
		if res.Failed() {
			t.Fatal(res.Err)
		}
		cs := d.CacheStats()
		if pass == 1 && (!res.DiskCached || cs.DiskHits != 1) {
			t.Fatalf("warm pass: diskCached=%t stats=%+v", res.DiskCached, cs)
		}
	}
	gc, err := GCCache("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One v1 design manifest plus the v2 phase snapshots the pipeline
	// stored for it (parse, lower, efsm, emit-c).
	if gc.LiveEntries != 5 {
		t.Fatalf("GCCache sees %d live entries, want 5 (1 design + 4 phase)", gc.LiveEntries)
	}
}

func TestPublicAPIRemoteCache(t *testing.T) {
	// A real shared tier: the protocol server over its own store.
	backing, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(remote.NewServer(backing))
	defer srv.Close()

	req := BuildRequest{Path: "abro.ecl", Source: paperex.ABRO, Targets: []Target{TargetC}}

	// Machine A compiles and uploads.
	rcA, err := DialRemoteCache(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	dA := NewDriver(0)
	dA.Remote = rcA
	if res := dA.BuildOne(req); res.Failed() || res.Cached {
		t.Fatalf("cold: err=%v cached=%t", res.Err, res.Cached)
	}
	rcA.Close()

	// Machine B is served remotely, visible through the facade stats.
	rcB, err := DialRemoteCache(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer rcB.Close()
	dB := NewDriver(0)
	dB.Remote = rcB
	res := dB.BuildOne(req)
	if res.Failed() || !res.RemoteCached {
		t.Fatalf("warm: err=%v remoteCached=%t", res.Err, res.RemoteCached)
	}
	var cs CacheStats = dB.CacheStats()
	if cs.RemoteHits != 1 || cs.Misses != 0 {
		t.Fatalf("stats = %+v, want one remote hit and no compiles", cs)
	}
	var rs RemoteCacheStats = rcB.Stats()
	if rs.Hits != 1 {
		t.Fatalf("client stats = %+v, want one hit", rs)
	}
	if _, err := DialRemoteCache("not a url"); err == nil {
		t.Fatal("DialRemoteCache accepted garbage")
	}
}
